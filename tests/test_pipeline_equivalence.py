"""Default pipeline ≡ the seed (pre-pipeline) compiler, bit for bit.

``_seed_compile`` below is the monolithic ``QTurboCompiler._compile``
exactly as it existed before the pass-pipeline refactor, kept as a
frozen reference implementation over the same primitives
(GlobalLinearSystem, partition_channels, local solvers, refinement).
Every registered model on every device preset must compile to the same
schedules, alphas, positions, and residuals through the default
pipeline — the refactor is a reorganization, not a behavior change.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.aais import aais_for_device
from repro.core import QTurboCompiler
from repro.core.error_bounds import ErrorBudget
from repro.core.linear_system import GlobalLinearSystem
from repro.core.partition import partition_channels
from repro.core.refinement import refine_dynamic_alphas
from repro.core.result import CompilationResult, SegmentSolution
from repro.core.local_solvers import select_strategy
from repro.core.time_optimizer import MIN_TIME_FLOOR, optimize_evolution_time
from repro.errors import InfeasibleError
from repro.hamiltonian.time_dependent import PiecewiseHamiltonian
from repro.models import build_model, build_time_dependent_model, model_names
from repro.pulse.schedule import PulseSchedule, PulseSegment

_ZERO = 1e-12

DEVICES = ("rydberg", "rydberg-1d", "aquila", "heisenberg")
QUBITS = 3

#: Models whose builders reject the default 3-qubit register.
_MIN_QUBITS = {"ising_cycle_plus": 5}


# ----------------------------------------------------------------------
# The seed compiler, frozen (verbatim port of the pre-refactor monolith)
# ----------------------------------------------------------------------
def _bottleneck_time(strategies, alphas, t_floor):
    if not strategies:
        return t_floor
    return optimize_evolution_time(strategies, alphas, t_floor=t_floor).t_sim


def _anchor_segment(fixed_strategies, linear_solutions, t_all):
    best_index = 0
    best_beta = math.inf
    for index, (solution, t_seg) in enumerate(zip(linear_solutions, t_all)):
        beta = 0.0
        for strategy in fixed_strategies:
            for channel in strategy.component.channels:
                beta = max(beta, abs(solution.alphas[channel.name]) / t_seg)
        if beta < best_beta - _ZERO:
            best_beta = beta
            best_index = index
    return best_index


def _solve_fixed(fixed_strategies, alphas, t_anchor, growth, max_iters):
    t_current = t_anchor
    for _iteration in range(max_iters + 1):
        values, solutions = {}, {}
        feasible = True
        for k, strategy in enumerate(fixed_strategies):
            expressions = {
                channel.name: alphas[channel.name] / t_current
                for channel in strategy.component.channels
            }
            solution = strategy.solve_expressions(expressions)
            solutions[k] = solution
            values.update(solution.values)
            if not solution.feasible:
                feasible = False
        if feasible:
            return values, solutions, _iteration, []
        t_current *= growth
    raise InfeasibleError("seed reference: fixed solve infeasible")


def _segment_time(fixed_strategies, fixed_solutions, alphas, t_dynamic, t_floor):
    numerator = denominator = 0.0
    for index, _strategy in enumerate(fixed_strategies):
        solution = fixed_solutions[index]
        for name, expr in solution.achieved_expressions.items():
            numerator += expr * alphas[name]
            denominator += expr * expr
    t_fit = numerator / denominator if denominator > _ZERO else 0.0
    return max(t_dynamic, t_fit, t_floor)


def _seed_compile(
    aais,
    target: PiecewiseHamiltonian,
    refine: bool = True,
    t_floor: float = MIN_TIME_FLOOR,
    growth: float = 1.15,
    max_iters: int = 25,
) -> CompilationResult:
    """The pre-pipeline ``QTurboCompiler._compile``, stage by stage."""
    channels = aais.channels

    # Stage 1: global linear solves (one per segment, shared matrix).
    extra_terms = []
    for segment in target.segments:
        extra_terms.extend(segment.hamiltonian.terms)
    key = tuple(sorted({t for t in extra_terms if not t.is_identity}))
    system = GlobalLinearSystem(channels, extra_terms=key)
    b_targets = [
        {
            term: coeff * segment.duration
            for term, coeff in segment.hamiltonian.terms.items()
            if not term.is_identity
        }
        for segment in target.segments
    ]
    linear_solutions = [system.solve(b) for b in b_targets]

    warnings = []
    for solution in linear_solutions:
        for term in solution.unreachable_terms:
            message = f"target term {term} is unreachable on this AAIS"
            if message not in warnings:
                warnings.append(message)

    # Stage 2: partition into localized mixed systems.
    components = list(partition_channels(channels))
    strategies = [select_strategy(c) for c in components]
    fixed_strategies = [s for s in strategies if s.component.is_fixed]
    dynamic_strategies = [s for s in strategies if s.component.is_dynamic]

    # Stage 3: per-segment bottleneck evolution times.
    t_dynamic = [
        _bottleneck_time(dynamic_strategies, sol.alphas, t_floor)
        for sol in linear_solutions
    ]
    t_all = [
        max(t_dyn, _bottleneck_time(fixed_strategies, sol.alphas, t_floor))
        for t_dyn, sol in zip(t_dynamic, linear_solutions)
    ]

    # Stage 4: runtime-fixed solve, shared across segments.
    fixed_values, fixed_solutions = {}, {}
    feasibility_iterations = 0
    if fixed_strategies:
        anchor = _anchor_segment(fixed_strategies, linear_solutions, t_all)
        (
            fixed_values,
            fixed_solutions,
            feasibility_iterations,
            fixed_warnings,
        ) = _solve_fixed(
            fixed_strategies,
            linear_solutions[anchor].alphas,
            t_all[anchor],
            growth,
            max_iters,
        )
        warnings.extend(fixed_warnings)

    # Stage 4b: per-segment final times and dynamic solves.
    segments, pulse_segments = [], []
    eps2_total = eps1_total = 0.0
    refinement_applied = False
    for index, _segment in enumerate(target.segments):
        alphas = dict(linear_solutions[index].alphas)
        t_seg = _segment_time(
            fixed_strategies, fixed_solutions, alphas, t_dynamic[index],
            t_floor,
        )
        for strategy_index, _strategy in enumerate(fixed_strategies):
            solution = fixed_solutions[strategy_index]
            for name, expr in solution.achieved_expressions.items():
                alphas[name] = expr * t_seg

        if refine and fixed_strategies and dynamic_strategies:
            dynamic_channels = [
                c for s in dynamic_strategies for c in s.component.channels
            ]
            refined = refine_dynamic_alphas(
                system, b_targets[index], alphas, dynamic_channels, t_seg
            )
            if refined.applied:
                alphas = refined.alphas
                refinement_applied = True

        dynamic_values = {}
        eps2_segment = 0.0
        for strategy in dynamic_strategies:
            solution = strategy.solve(alphas, t_seg)
            dynamic_values.update(solution.values)
            eps2_segment += solution.alpha_residual_l1(alphas, t_seg)

        values = dict(fixed_values)
        values.update(dynamic_values)
        achieved = {
            channel.name: channel.evaluate(values) * t_seg
            for channel in channels
        }
        eps1_total += float(
            np.abs(system.residual_vector(alphas, b_targets[index])).sum()
        )
        eps2_total += eps2_segment

        segments.append(
            SegmentSolution(
                duration=t_seg,
                values=values,
                alpha_targets=alphas,
                achieved_alphas=achieved,
                b_target=b_targets[index],
                b_sim=system.achieved_b(achieved),
            )
        )
        pulse_segments.append(
            PulseSegment(duration=t_seg, dynamic_values=dynamic_values)
        )

    schedule = PulseSchedule(
        aais, fixed_values=fixed_values, segments=pulse_segments
    )
    warnings.extend(schedule.validate())
    budget = ErrorBudget(
        matrix_l1_norm=system.matrix_l1_norm(),
        linear_residual=eps1_total,
        local_residuals=[eps2_total],
    )
    return CompilationResult(
        success=True,
        message="ok",
        segments=segments,
        schedule=schedule,
        num_components=len(components),
        error_budget=budget,
        refinement_applied=refinement_applied,
        feasibility_iterations=feasibility_iterations,
        warnings=warnings,
    )


# ----------------------------------------------------------------------
# Equivalence checks
# ----------------------------------------------------------------------
def _assert_identical(pipeline: CompilationResult, seed: CompilationResult):
    """Exact (bit-level) equality of everything the compiler decides."""
    assert pipeline.success == seed.success
    assert pipeline.num_components == seed.num_components
    assert pipeline.refinement_applied == seed.refinement_applied
    assert pipeline.feasibility_iterations == seed.feasibility_iterations
    assert pipeline.warnings == seed.warnings
    assert len(pipeline.segments) == len(seed.segments)
    for ours, ref in zip(pipeline.segments, seed.segments):
        assert ours.duration == ref.duration
        assert ours.values == ref.values
        assert ours.alpha_targets == ref.alpha_targets
        assert ours.achieved_alphas == ref.achieved_alphas
        assert ours.b_target == ref.b_target
        assert ours.b_sim == ref.b_sim
    assert pipeline.schedule.fixed_values == seed.schedule.fixed_values
    assert pipeline.schedule.to_dict() == seed.schedule.to_dict()
    assert pipeline.error_budget.bound == seed.error_budget.bound
    assert (
        pipeline.error_budget.linear_residual
        == seed.error_budget.linear_residual
    )


@pytest.mark.parametrize("device", DEVICES)
@pytest.mark.parametrize("model", model_names())
def test_default_pipeline_matches_seed_compiler(model, device):
    qubits = _MIN_QUBITS.get(model, QUBITS)
    target = build_model(model, qubits)
    aais = aais_for_device(device, max(qubits, target.num_qubits()))
    piecewise = PiecewiseHamiltonian.constant(target, 1.0)
    seed = _seed_compile(aais, piecewise)
    pipeline = QTurboCompiler(aais).compile_piecewise(piecewise)
    _assert_identical(pipeline, seed)


@pytest.mark.parametrize("device", ("rydberg-1d", "aquila"))
def test_default_pipeline_matches_seed_time_dependent(device):
    sweep = build_time_dependent_model("mis_chain", QUBITS, duration=1.0)
    aais = aais_for_device(device, QUBITS)
    piecewise = sweep.discretize(3)
    seed = _seed_compile(aais, piecewise)
    pipeline = QTurboCompiler(aais).compile_piecewise(piecewise)
    _assert_identical(pipeline, seed)


def test_no_refine_matches_seed():
    target = build_model("ising_chain", QUBITS)
    aais = aais_for_device("rydberg-1d", QUBITS)
    piecewise = PiecewiseHamiltonian.constant(target, 1.0)
    seed = _seed_compile(aais, piecewise, refine=False)
    pipeline = QTurboCompiler(aais, refine=False).compile_piecewise(piecewise)
    _assert_identical(pipeline, seed)


@pytest.mark.parametrize("device", DEVICES)
@pytest.mark.parametrize("model", model_names())
def test_delta_compile_matches_seed_compiler(model, device, tmp_path):
    """A delta re-entry over a carried donor prefix is bit-identical.

    The donor compiles at t=1.0 and populates the snapshot store; the
    sweep point at t=1.3 shares the donor's structure (same nonzero
    terms) but not its coefficients, so a fresh compiler serves it as a
    delta — which must equal the frozen seed compiler bit for bit.
    """
    qubits = _MIN_QUBITS.get(model, QUBITS)
    target = build_model(model, qubits)
    aais = aais_for_device(device, max(qubits, target.num_qubits()))
    store = str(tmp_path / "snapshots")
    donor = QTurboCompiler(aais, snapshots=store).compile_piecewise(
        PiecewiseHamiltonian.constant(target, 1.0)
    )
    assert donor.incremental is None
    point = PiecewiseHamiltonian.constant(target, 1.3)
    delta = QTurboCompiler(aais, snapshots=store).compile_piecewise(point)
    assert delta.incremental is not None
    assert delta.incremental["mode"] == "delta"
    _assert_identical(delta, _seed_compile(aais, point))


# ----------------------------------------------------------------------
# Warm service store ≡ cold in-process compiler
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def warm_service(tmp_path_factory):
    """One in-process service shared by the differential sweep below."""
    from repro.service import ReproService, ServiceClient, ServiceConfig

    data_dir = tmp_path_factory.mktemp("service")
    with ReproService(ServiceConfig(port=0, data_dir=data_dir)) as service:
        yield ServiceClient(service.url)


@pytest.mark.parametrize("device", DEVICES)
@pytest.mark.parametrize("model", model_names())
def test_warm_service_schedule_matches_cold_compiler(
    model, device, warm_service
):
    """A schedule served from the persistent store is bit-identical to
    a cold in-process compile of the same workload.

    The first submission executes through the service's shared snapshot
    store and persists the result; the second must come back from the
    store (``source == "store"``) — and both must equal what a fresh
    ``QTurboCompiler`` produces offline, modulo nothing: JSON float
    serialization round-trips exactly, so the comparison is exact.
    """
    import json as _json

    qubits = _MIN_QUBITS.get(model, QUBITS)
    request = {
        "model": model, "qubits": qubits, "time": 1.0, "device": device
    }
    cold = warm_service.compile(request)
    warm = warm_service.compile(request)
    assert warm["job"]["source"] == "store"
    assert warm["result"]["schedule"] == cold["result"]["schedule"]

    target = build_model(model, qubits)
    aais = aais_for_device(device, max(qubits, target.num_qubits()))
    offline = QTurboCompiler(aais).compile_piecewise(
        PiecewiseHamiltonian.constant(target, 1.0)
    )
    expected = _json.loads(_json.dumps(offline.schedule.to_dict()))
    assert warm["result"]["schedule"] == expected
    assert warm["result"]["execution_time_us"] == offline.execution_time
