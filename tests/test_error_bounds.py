"""Unit tests for the Theorem-1 error bound."""

import pytest

from repro.core.error_bounds import ErrorBudget, theorem1_bound


class TestTheorem1Bound:
    def test_formula(self):
        assert theorem1_bound(2.0, 0.1, [0.2, 0.3]) == pytest.approx(
            2.0 * 0.5 + 0.1
        )

    def test_zero_everything(self):
        assert theorem1_bound(0.0, 0.0, []) == 0.0

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            theorem1_bound(-1.0, 0.0, [])
        with pytest.raises(ValueError):
            theorem1_bound(1.0, -0.1, [])
        with pytest.raises(ValueError):
            theorem1_bound(1.0, 0.0, [-0.1])

    def test_budget_dataclass(self):
        budget = ErrorBudget(
            matrix_l1_norm=4.0,
            linear_residual=0.01,
            local_residuals=(0.1, 0.2),
        )
        assert budget.bound == pytest.approx(4.0 * 0.3 + 0.01)
        assert budget.total_local_residual == pytest.approx(0.3)

    def test_bound_monotone_in_local_error(self):
        small = theorem1_bound(3.0, 0.0, [0.1])
        large = theorem1_bound(3.0, 0.0, [0.2])
        assert large > small
