"""Unit tests for pulse schedules and export."""

import json

import pytest

from repro import QTurboCompiler
from repro.aais import HeisenbergAAIS, RydbergAAIS
from repro.devices import aquila_spec
from repro.errors import ScheduleError
from repro.models import ising_chain, ising_cycle
from repro.pulse import PulseSchedule, PulseSegment, to_ahs_program, to_json


@pytest.fixture
def compiled(paper_aais):
    return QTurboCompiler(paper_aais).compile(ising_chain(3), 1.0)


class TestPulseSegment:
    def test_positive_duration(self):
        with pytest.raises(ScheduleError):
            PulseSegment(duration=0.0, dynamic_values={})


class TestPulseSchedule:
    def test_coverage_validation_missing_fixed(self, paper_aais):
        with pytest.raises(ScheduleError):
            PulseSchedule(
                paper_aais,
                fixed_values={},
                segments=[
                    PulseSegment(
                        1.0,
                        {
                            v.name: 0.0
                            for v in paper_aais.dynamic_variables
                        },
                    )
                ],
            )

    def test_coverage_validation_missing_dynamic(self, paper_aais):
        with pytest.raises(ScheduleError):
            PulseSchedule(
                paper_aais,
                fixed_values={"x_0": 0.0, "x_1": 8.0, "x_2": 16.0},
                segments=[PulseSegment(1.0, {})],
            )

    def test_needs_segments(self, paper_aais):
        with pytest.raises(ScheduleError):
            PulseSchedule(paper_aais, fixed_values={}, segments=[])

    def test_total_duration(self, compiled):
        assert compiled.schedule.total_duration == pytest.approx(0.8)

    def test_values_at_segment_merges(self, compiled):
        values = compiled.schedule.values_at_segment(0)
        assert "x_0" in values
        assert "omega_0" in values

    def test_hamiltonian_at_segment(self, compiled):
        h = compiled.schedule.hamiltonian_at_segment(0)
        assert not h.is_zero

    def test_validate_clean_schedule(self, compiled):
        assert compiled.schedule.validate() == []

    def test_validate_flags_overtime(self, paper_aais, compiled):
        schedule = compiled.schedule
        long = PulseSchedule(
            paper_aais,
            fixed_values=schedule.fixed_values,
            segments=[
                PulseSegment(10.0, dict(schedule.segments[0].dynamic_values))
            ],
        )
        problems = long.validate()
        assert any("exceeds" in p for p in problems)

    def test_validate_flags_spacing(self, paper_aais, compiled):
        schedule = compiled.schedule
        bad = PulseSchedule(
            paper_aais,
            fixed_values={"x_0": 0.0, "x_1": 0.5, "x_2": 16.0},
            segments=list(schedule.segments),
        )
        problems = bad.validate()
        assert any("separated" in p for p in problems)

    def test_to_dict_roundtrips_json(self, compiled):
        text = to_json(compiled.schedule)
        data = json.loads(text)
        assert data["num_sites"] == 3
        assert data["total_duration"] == pytest.approx(0.8)
        assert len(data["segments"]) == 1


class TestAHSExport:
    def test_rydberg_export(self, compiled):
        program = to_ahs_program(compiled.schedule)
        assert len(program["register"]) == 3
        assert len(program["register"][0]) == 2  # padded to 2-D points
        drive = program["driving_field"]
        assert len(drive["times"]) == 2
        assert drive["omega"][0] == pytest.approx(2.5)

    def test_global_drive_export(self):
        aais = RydbergAAIS(4, spec=aquila_spec(omega_max=6.28))
        result = QTurboCompiler(aais).compile(
            ising_cycle(4, j=0.157, h=0.785), 1.0
        )
        program = to_ahs_program(result.schedule)
        assert len(program["register"]) == 4
        assert program["driving_field"]["omega"][0] > 0

    def test_heisenberg_rejected(self):
        aais = HeisenbergAAIS(3)
        result = QTurboCompiler(aais).compile(ising_chain(3), 1.0)
        with pytest.raises(ScheduleError):
            to_ahs_program(result.schedule)
