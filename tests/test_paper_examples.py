"""Regression tests pinning the paper's worked examples (experiment index
S5/S6 in DESIGN.md) and headline real-device compilation numbers."""

import pytest

from repro import QTurboCompiler
from repro.aais import RydbergAAIS
from repro.devices import aquila_spec, paper_example_spec
from repro.models import ising_chain, ising_cycle, pxp_chain


class TestSection5WorkedExample:
    """3-qubit Ising chain on the Rydberg AAIS with Δ≤20, Ω≤2.5."""

    @pytest.fixture(scope="class")
    def result(self):
        aais = RydbergAAIS(3, spec=paper_example_spec())
        return QTurboCompiler(aais).compile(ising_chain(3), 1.0)

    def test_evolution_time(self, result):
        # Equation (6): T_sim = 2 / 2.5 = 0.8 µs.
        assert result.execution_time == pytest.approx(0.8)

    def test_rabi_at_maximum(self, result):
        values = result.segments[0].values
        for i in range(3):
            assert values[f"omega_{i}"] == pytest.approx(2.5)
            assert values[f"phi_{i}"] == pytest.approx(0.0, abs=1e-9)

    def test_atom_positions(self, result):
        # Equation (8): x = (0, 7.46, 14.92) µm up to translation.
        values = result.segments[0].values
        xs = sorted(values[f"x_{i}"] for i in range(3))
        assert xs[1] - xs[0] == pytest.approx(7.46, abs=0.02)
        assert xs[2] - xs[0] == pytest.approx(14.92, abs=0.04)

    def test_section62_refined_detunings(self, result):
        # Section 6.2: refinement lifts Δ1 = Δ3 to ≈ 2.55, Δ2 ≈ 5.01.
        values = result.segments[0].values
        assert values["delta_0"] == pytest.approx(2.55, abs=0.05)
        assert values["delta_2"] == pytest.approx(2.55, abs=0.05)
        assert values["delta_1"] == pytest.approx(5.01, abs=0.05)

    def test_long_range_tail_matches_paper_scale(self, result):
        # Paper: α3 = 0.020 with their positions; the exactly-solved
        # layout gives C6/4 / 14.92⁶ × 0.8 ≈ 0.0156.
        alpha3 = result.segments[0].achieved_alphas["vdw_0_2"]
        assert alpha3 == pytest.approx(0.0156, abs=0.005)


class TestFigure6CompilationNumbers:
    def test_ising_cycle_12_compresses_to_quarter_microsecond(self):
        """Fig. 6(a): 1.0 µs target → 0.25 µs pulse (Ω_max = 6.28)."""
        aais = RydbergAAIS(12, spec=aquila_spec(omega_max=6.28))
        result = QTurboCompiler(aais).compile(
            ising_cycle(12, j=0.157, h=0.785), 1.0
        )
        assert result.success
        assert result.execution_time == pytest.approx(0.25, abs=0.01)

    def test_pxp_20us_compresses_below_half_microsecond(self):
        """Fig. 6(b): 20 µs target → ≈0.4 µs pulse (Ω_max = 13.8)."""
        aais = RydbergAAIS(6, spec=aquila_spec(omega_max=13.8))
        result = QTurboCompiler(aais).compile(
            pxp_chain(6, j=1.26, h=0.126), 20.0
        )
        assert result.success
        assert result.execution_time < 0.5
        # Far beyond Aquila's 4 µs wall-clock cap for the *target*, yet
        # the compiled pulse fits comfortably.
        assert result.execution_time < aais.spec.max_time

    def test_target_sweep_stays_proportional(self):
        """Fig. 6(a) sweeps T_tar ∈ [0.5, 1.0] µs; T_sim tracks linearly."""
        aais = RydbergAAIS(12, spec=aquila_spec(omega_max=6.28))
        compiler = QTurboCompiler(aais)
        model = ising_cycle(12, j=0.157, h=0.785)
        t_half = compiler.compile(model, 0.5).execution_time
        t_full = compiler.compile(model, 1.0).execution_time
        assert t_full == pytest.approx(2 * t_half, rel=1e-6)


class TestTable1Shape:
    def test_qturbo_scales_gently(self, chain_spec):
        """QTurbo's compile time must not explode with system size."""
        times = {}
        for n in (4, 8, 12):
            aais = RydbergAAIS(n, spec=chain_spec)
            result = QTurboCompiler(aais).compile(ising_chain(n), 1.0)
            assert result.success
            times[n] = result.compile_seconds
        # Growing 3× in size must cost far less than the baseline's
        # exponential growth — allow a generous polynomial envelope.
        assert times[12] < 60 * times[4] + 1.0
