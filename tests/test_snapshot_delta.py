"""Incremental compilation: snapshots, delta detection, and wiring.

Bit-level equivalence of delta-compiled schedules against the frozen
seed compiler lives in ``test_pipeline_equivalence.py``; this module
covers the machinery itself — family digests, the invalidation
contract, the snapshot store's failure modes, cache statistics, and the
batch / experiment-runner / CLI wiring.
"""

from __future__ import annotations

import json
import pickle

import pytest

from repro.aais import aais_for_device
from repro.batch import BatchCompiler, BatchJob
from repro.batch.compiler import pass_cache_stats, reset_worker_compilers
from repro.cli import main as cli_main
from repro.core import QTurboCompiler
from repro.core.pipeline import (
    INVALIDATION_INPUTS,
    PASS_INVALIDATION,
    PASS_REGISTRY,
    SnapshotStore,
    coefficient_digest,
    reentry_index,
    snapshot_cache_stats,
    structure_digest,
    unit_digest,
)
from repro.errors import CompilationError, ExperimentError
from repro.experiments import ExperimentRunner, ExperimentSpec
from repro.hamiltonian import Hamiltonian
from repro.hamiltonian.expression import x, zz
from repro.hamiltonian.time_dependent import PiecewiseHamiltonian

QUBITS = 3


def _target(j: float = 0.5, h: float = 0.3, h_last: float = 0.3) -> Hamiltonian:
    """A small Ising chain with independently tunable coefficients."""
    target = j * zz(0, 1) + j * zz(1, 2) + h * x(0) + h * x(1)
    return target + h_last * x(2)


def _piecewise(time: float = 1.0, **coeffs) -> PiecewiseHamiltonian:
    return PiecewiseHamiltonian.constant(_target(**coeffs), time)


def _aais(device: str = "rydberg-1d"):
    return aais_for_device(device, QUBITS)


# ----------------------------------------------------------------------
# Digests and the invalidation contract
# ----------------------------------------------------------------------


class TestDigests:
    def test_equal_targets_share_all_digests(self):
        a, b = _piecewise(), _piecewise()
        assert structure_digest(a) == structure_digest(b)
        assert coefficient_digest(a) == coefficient_digest(b)
        assert unit_digest(a) == unit_digest(b)

    def test_coefficient_change_keeps_structure(self):
        a, b = _piecewise(), _piecewise(j=0.7)
        assert structure_digest(a) == structure_digest(b)
        assert coefficient_digest(a) != coefficient_digest(b)
        assert unit_digest(a) != unit_digest(b)

    def test_duration_change_is_a_coefficient_change(self):
        a, b = _piecewise(1.0), _piecewise(1.3)
        assert structure_digest(a) == structure_digest(b)
        assert coefficient_digest(a) != coefficient_digest(b)

    def test_term_added_changes_structure(self):
        a = _piecewise()
        b = PiecewiseHamiltonian.constant(_target() + 0.1 * zz(0, 2), 1.0)
        assert structure_digest(a) != structure_digest(b)

    def test_sign_flip_to_exactly_zero_changes_structure(self):
        """A coefficient hitting exactly zero drops the term — no
        coefficient-only disguise is possible for vanishing terms."""
        a, b = _piecewise(), _piecewise(h_last=0.0)
        assert structure_digest(a) != structure_digest(b)

    def test_every_registry_pass_declares_invalidation(self):
        assert set(PASS_INVALIDATION) == set(PASS_REGISTRY)
        for name, inputs in PASS_INVALIDATION.items():
            assert set(inputs) <= set(INVALIDATION_INPUTS), name

    def test_structure_only_passes_are_the_documented_ones(self):
        coefficient_free = {
            name
            for name, inputs in PASS_INVALIDATION.items()
            if "coefficients" not in inputs
        }
        assert coefficient_free == {"partition", "term_fusion"}

    def test_reentry_index_default_and_fused_pipelines(self):
        default = QTurboCompiler(_aais())
        assert reentry_index(default._pass_manager.passes) == 0
        fused = QTurboCompiler(
            _aais(), passes={"enable": ["term_fusion"]}
        )
        assert reentry_index(fused._pass_manager.passes) == 1
        assert fused._pass_manager.passes[1].name == "build_linear_system"


# ----------------------------------------------------------------------
# Compiler-level incremental behavior
# ----------------------------------------------------------------------


class TestIncrementalCompiler:
    def test_cold_then_identical_then_delta(self, tmp_path):
        store = str(tmp_path / "snaps")
        cold = QTurboCompiler(_aais(), snapshots=store).compile_piecewise(
            _piecewise()
        )
        assert cold.success and cold.incremental is None

        identical = QTurboCompiler(
            _aais(), snapshots=store
        ).compile_piecewise(_piecewise())
        assert identical.incremental["mode"] == "identical"
        assert identical.schedule.to_dict() == cold.schedule.to_dict()

        delta = QTurboCompiler(_aais(), snapshots=store).compile_piecewise(
            _piecewise(j=0.8)
        )
        assert delta.incremental["mode"] == "delta"
        assert delta.incremental["reentry_pass"] == "build_linear_system"
        reference = QTurboCompiler(_aais()).compile_piecewise(
            _piecewise(j=0.8)
        )
        assert delta.schedule.to_dict() == reference.schedule.to_dict()

    def test_fused_delta_carries_prefix_and_matches_cold(self, tmp_path):
        store = str(tmp_path / "snaps")
        passes = {"enable": ["term_fusion"]}
        donor = QTurboCompiler(
            _aais("heisenberg"), passes=passes, snapshots=store
        ).compile_piecewise(_piecewise())
        assert donor.incremental is None

        delta = QTurboCompiler(
            _aais("heisenberg"), passes=passes, snapshots=store
        ).compile_piecewise(_piecewise(j=0.65))
        assert delta.incremental["mode"] == "delta"
        assert delta.incremental["reentry_index"] == 1
        carried = delta.pass_trace[0]
        assert carried["name"] == "term_fusion"
        assert carried["seconds"] == 0.0
        assert carried["diagnostics"].get("carried") is True

        reference = QTurboCompiler(
            _aais("heisenberg"), passes=passes
        ).compile_piecewise(_piecewise(j=0.65))
        assert delta.schedule.to_dict() == reference.schedule.to_dict()

    def test_structure_change_lands_in_new_family(self, tmp_path):
        store = str(tmp_path / "snaps")
        QTurboCompiler(_aais(), snapshots=store).compile_piecewise(
            _piecewise()
        )
        for variant in (
            PiecewiseHamiltonian.constant(_target() + 0.1 * zz(0, 2), 1.0),
            PiecewiseHamiltonian.constant(0.5 * zz(0, 1) + 0.3 * x(0), 1.0),
            _piecewise(h_last=0.0),
        ):
            result = QTurboCompiler(
                _aais(), snapshots=store
            ).compile_piecewise(variant)
            assert result.success
            assert result.incremental is None  # cold: new family

    def test_compiler_config_change_lands_in_new_family(self, tmp_path):
        store = str(tmp_path / "snaps")
        QTurboCompiler(_aais(), snapshots=store).compile_piecewise(
            _piecewise()
        )
        stale = QTurboCompiler(
            _aais(), refine=False, snapshots=store
        ).compile_piecewise(_piecewise())
        assert stale.incremental is None
        stats = SnapshotStore(str(tmp_path / "snaps")).disk_stats()
        assert stats["families"] == 2

    def test_corrupt_shared_blob_falls_back_cold_and_recommits(
        self, tmp_path
    ):
        store_dir = tmp_path / "snaps"
        QTurboCompiler(
            _aais(), snapshots=str(store_dir)
        ).compile_piecewise(_piecewise())
        (family,) = [p for p in store_dir.iterdir() if p.is_dir()]
        (family / "shared.pkl").write_bytes(b"not a pickle")

        compiler = QTurboCompiler(_aais(), snapshots=str(store_dir))
        result = compiler.compile_piecewise(_piecewise(j=0.8))
        assert result.success and result.incremental is None
        stats = compiler.snapshot_stats()
        assert stats["invalid"] >= 1
        assert stats["commits"] == 1  # the fallback re-committed
        # The re-committed donor serves the next delta normally.
        healed = QTurboCompiler(
            _aais(), snapshots=str(store_dir)
        ).compile_piecewise(_piecewise(j=0.9))
        assert healed.incremental["mode"] == "delta"

    def test_corrupt_unit_blob_falls_back_cold(self, tmp_path):
        store_dir = tmp_path / "snaps"
        passes = {"enable": ["term_fusion"]}
        QTurboCompiler(
            _aais(), passes=passes, snapshots=str(store_dir)
        ).compile_piecewise(_piecewise())
        (family,) = [p for p in store_dir.iterdir() if p.is_dir()]
        (family / "after-00-term_fusion.pkl").write_bytes(b"garbage")

        result = QTurboCompiler(
            _aais(), passes=passes, snapshots=str(store_dir)
        ).compile_piecewise(_piecewise(j=0.8))
        assert result.success and result.incremental is None

    def test_clear_wipes_families(self, tmp_path):
        store_dir = tmp_path / "snaps"
        compiler = QTurboCompiler(_aais(), snapshots=str(store_dir))
        compiler.compile_piecewise(_piecewise())
        store = SnapshotStore(store_dir)
        assert store.disk_stats()["families"] == 1
        store.clear()
        assert store.disk_stats()["families"] == 0
        assert not store_dir.exists()

    def test_snapshot_stats_in_pass_cache_stats(self, tmp_path):
        compiler = QTurboCompiler(
            _aais(), snapshots=str(tmp_path / "snaps")
        )
        compiler.compile_piecewise(_piecewise())
        compiler.compile_piecewise(_piecewise(j=0.8))
        stats = compiler.pass_cache_stats()["snapshot"]
        assert stats["commits"] == 1
        assert stats["hits_delta"] == 1
        assert stats["reentry"] == {"build_linear_system": 1}
        assert stats["disk"]["families"] == 1
        assert QTurboCompiler(_aais()).snapshot_stats() is None

    def test_snapshot_cache_stats_aggregates(self, tmp_path):
        compiler = QTurboCompiler(
            _aais(), snapshots=str(tmp_path / "snaps")
        )
        compiler.compile_piecewise(_piecewise())
        totals = snapshot_cache_stats()
        assert totals["stores"] >= 1
        assert totals["commits"] >= 1
        assert set(totals["disk"]) == {
            "families",
            "degraded",
            "blobs",
            "bytes",
        }


class TestExplainAtPass:
    def test_snapshot_source_for_donor(self, tmp_path):
        compiler = QTurboCompiler(
            _aais(), snapshots=str(tmp_path / "snaps")
        )
        compiler.compile_piecewise(_piecewise())
        state = compiler.explain_at_pass(_piecewise(), "partition")
        assert state["source"] == "snapshot"
        assert state["passes_run"] == ["build_linear_system", "partition"]
        assert state["partition"]["components"] >= 1

    def test_replay_source_without_snapshots(self):
        compiler = QTurboCompiler(_aais())
        state = compiler.explain_at_pass(_piecewise(), "emit_schedule")
        assert state["source"] == "replay"
        assert state["schedule_segments"] == 1
        assert "result" in state

    def test_replay_source_for_non_donor_target(self, tmp_path):
        compiler = QTurboCompiler(
            _aais(), snapshots=str(tmp_path / "snaps")
        )
        compiler.compile_piecewise(_piecewise())
        state = compiler.explain_at_pass(_piecewise(j=0.8), "partition")
        assert state["source"] == "replay"

    def test_unknown_pass_rejected(self):
        compiler = QTurboCompiler(_aais())
        with pytest.raises(CompilationError, match="unknown pass"):
            compiler.explain_at_pass(_piecewise(), "nonesuch")


# ----------------------------------------------------------------------
# Concurrency: process-pool workers sharing one store
# ----------------------------------------------------------------------


class TestConcurrentAccess:
    def test_process_pool_batch_shares_one_store(self, tmp_path):
        store = str(tmp_path / "snaps")
        aais = _aais()
        jobs = [
            BatchJob.constant(
                f"sweep-{k}",
                _target(j=0.4 + 0.1 * k),
                1.0,
                aais,
                snapshots=store,
            )
            for k in range(4)
        ]
        batch = BatchCompiler(executor="process", workers=2).compile_many(
            jobs
        )
        assert batch.all_succeeded
        reference = BatchCompiler(executor="serial").compile_many(
            [
                BatchJob.constant(
                    f"ref-{k}", _target(j=0.4 + 0.1 * k), 1.0, aais
                )
                for k in range(4)
            ]
        )
        for ours, ref in zip(batch.outcomes, reference.outcomes):
            assert (
                ours.result.schedule.to_dict()
                == ref.result.schedule.to_dict()
            )
        # Concurrent same-family commits converge on one valid donor.
        meta_files = list(tmp_path.glob("snaps/*/family.json"))
        assert len(meta_files) == 1
        meta = json.loads(meta_files[0].read_text())
        assert meta["passes"] == [
            "build_linear_system",
            "partition",
            "time_optimization",
            "fixed_solve",
            "refinement",
            "emit_schedule",
        ]
        reset_worker_compilers()

    def test_batch_stats_merge_snapshot_bucket(self, tmp_path):
        reset_worker_compilers()
        store = str(tmp_path / "snaps")
        aais = _aais()
        jobs = [
            BatchJob.constant(
                f"sweep-{k}",
                _target(j=0.4 + 0.1 * k),
                1.0,
                aais,
                snapshots=store,
            )
            for k in range(3)
        ]
        assert BatchCompiler().compile_many(jobs).all_succeeded
        totals = pass_cache_stats()
        assert totals["snapshot"]["commits"] == 1
        assert totals["snapshot"]["hits_delta"] == 2
        assert totals["snapshot"]["reentry"] == {"build_linear_system": 2}
        reset_worker_compilers()


# ----------------------------------------------------------------------
# Experiment-runner wiring
# ----------------------------------------------------------------------

RUN_SPEC = {
    "name": "snap",
    "model": {"name": "ising_chain", "qubits": 2},
    "device": "rydberg-1d",
    "time": 1.0,
    "sweep": {"time": [1.0, 1.3, 1.6]},
}


def _run_spec(**extra):
    data = json.loads(json.dumps(RUN_SPEC))
    data.update(extra)
    return ExperimentSpec.from_dict(data)


class TestRunnerWiring:
    def test_sweep_delta_compiles_automatically(self, tmp_path):
        reset_worker_compilers()
        run_dir = tmp_path / "run"
        result = ExperimentRunner().run(_run_spec(), run_dir)
        assert result.all_ok and result.executed == 3
        assert (run_dir / "snapshots").is_dir()
        modes = [
            record["compile"].get("incremental", {}).get("mode")
            for record in result.records
        ]
        assert modes == [None, "delta", "delta"]
        reset_worker_compilers()

    def test_force_wipes_snapshots_and_recompiles(self, tmp_path):
        reset_worker_compilers()
        run_dir = tmp_path / "run"
        runner = ExperimentRunner()
        runner.run(_run_spec(), run_dir)
        marker = run_dir / "snapshots" / "marker"
        marker.write_text("stale")

        resumed = runner.run(_run_spec(), run_dir)
        assert resumed.executed == 0 and resumed.skipped == 3
        assert marker.exists()  # resume keeps the store

        reset_worker_compilers()
        forced = runner.run(_run_spec(), run_dir, force=True)
        assert forced.executed == 3
        assert not marker.exists()  # --force wiped the store
        assert (run_dir / "snapshots").is_dir()
        reset_worker_compilers()

    def test_runner_snapshots_off(self, tmp_path):
        reset_worker_compilers()
        run_dir = tmp_path / "run"
        result = ExperimentRunner(snapshots=False).run(_run_spec(), run_dir)
        assert result.all_ok
        assert not (run_dir / "snapshots").exists()
        for record in result.records:
            assert "incremental" not in record["compile"]
        reset_worker_compilers()

    def test_spec_snapshots_false_overrides_runner(self, tmp_path):
        reset_worker_compilers()
        run_dir = tmp_path / "run"
        result = ExperimentRunner().run(
            _run_spec(compiler={"snapshots": False}), run_dir
        )
        assert result.all_ok
        for record in result.records:
            assert "incremental" not in record["compile"]
        reset_worker_compilers()

    def test_spec_snapshots_validation(self):
        with pytest.raises(ExperimentError, match="snapshots"):
            _run_spec(compiler={"snapshots": 3})

    def test_spec_snapshots_true_keeps_hash_stable(self):
        assert (
            _run_spec(compiler={"snapshots": True}).spec_hash
            == _run_spec().spec_hash
        )


# ----------------------------------------------------------------------
# CLI wiring
# ----------------------------------------------------------------------


class TestCLI:
    def test_compile_at_pass_json(self, tmp_path, capsys):
        code = cli_main(
            [
                "compile",
                "--model",
                "ising_chain",
                "-n",
                "3",
                "--explain",
                "--at-pass",
                "partition",
                "--snapshot-dir",
                str(tmp_path / "snaps"),
                "--output",
                "json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["at_pass"]["source"] == "snapshot"
        assert payload["at_pass"]["pass_index"] == 1

    def test_at_pass_requires_explain(self, capsys):
        code = cli_main(
            ["compile", "--model", "ising_chain", "--at-pass", "partition"]
        )
        assert code == 2
        assert "--at-pass requires --explain" in capsys.readouterr().err

    def test_cache_stats_reports_snapshot_sections(self, tmp_path, capsys):
        store = str(tmp_path / "snaps")
        assert (
            cli_main(
                [
                    "compile",
                    "--model",
                    "ising_chain",
                    "--snapshot-dir",
                    store,
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert cli_main(["cache-stats", "--snapshot-dir", store]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "snapshot_cache" in payload
        disk = payload["snapshot_disk"]
        assert disk["families"] == 1 and disk["blobs"] > 0
