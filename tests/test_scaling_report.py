"""Tests for scaling fits, the text formatter round-trip, and reports."""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import QTurboCompiler
from repro.analysis import PowerLawFit, doubling_ratio, fit_power_law
from repro.hamiltonian import format_hamiltonian, parse_hamiltonian
from repro.models import ising_chain, kitaev_chain


class TestPowerLawFit:
    def test_exact_quadratic(self):
        sizes = [4, 8, 16, 32]
        seconds = [0.01 * n**2 for n in sizes]
        fit = fit_power_law(sizes, seconds)
        assert fit.exponent == pytest.approx(2.0, abs=1e-9)
        assert fit.prefactor == pytest.approx(0.01, rel=1e-6)
        assert fit.r_squared == pytest.approx(1.0)

    def test_exact_linear(self):
        fit = fit_power_law([2, 4, 8], [0.2, 0.4, 0.8])
        assert fit.exponent == pytest.approx(1.0, abs=1e-9)

    def test_predict(self):
        fit = PowerLawFit(exponent=2.0, prefactor=0.5, r_squared=1.0)
        assert fit.predict(4.0) == pytest.approx(8.0)

    def test_doubling_ratio(self):
        assert doubling_ratio([4, 8, 16], [1, 4, 16]) == pytest.approx(4.0)

    def test_noisy_fit_quality_below_one(self):
        fit = fit_power_law([2, 4, 8, 16], [0.2, 0.5, 0.7, 1.9])
        assert 0 < fit.r_squared < 1

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_power_law([1], [1])
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [1])
        with pytest.raises(ValueError):
            fit_power_law([0, 0], [1, 1])

    def test_baseline_grows_faster_than_qturbo(self):
        """Quantified Table-1 shape using recorded sweep data."""
        from repro.aais import HeisenbergAAIS
        from repro.baseline import SimuQStyleCompiler

        sizes = [4, 8, 16]
        base_times, qt_times = [], []
        for n in sizes:
            aais = HeisenbergAAIS(n)
            base = SimuQStyleCompiler(aais, seed=0, max_restarts=2).compile(
                ising_chain(n), 1.0
            )
            qt = QTurboCompiler(aais).compile(ising_chain(n), 1.0)
            base_times.append(base.compile_seconds)
            qt_times.append(qt.compile_seconds)
        assert (
            fit_power_law(sizes, base_times).exponent
            > fit_power_law(sizes, qt_times).exponent
        )


class TestFormatRoundtrip:
    def test_ising_chain_roundtrip(self):
        h = ising_chain(4, j=0.7, h=1.3)
        assert parse_hamiltonian(format_hamiltonian(h)).isclose(h)

    def test_kitaev_roundtrip_with_negatives(self):
        h = kitaev_chain(3, mu=2.0, t=1.5, h=0.3)
        assert parse_hamiltonian(format_hamiltonian(h)).isclose(h)

    def test_zero(self):
        from repro.hamiltonian import Hamiltonian

        assert format_hamiltonian(Hamiltonian.zero()) == "0"

    @given(
        st.lists(
            st.tuples(
                st.integers(0, 3),
                st.sampled_from("XYZ"),
                st.floats(
                    min_value=-5, max_value=5, allow_nan=False, width=32
                ).filter(lambda v: abs(v) > 1e-6),
            ),
            min_size=1,
            max_size=4,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_property_roundtrip_single_factors(self, entries):
        from repro.hamiltonian import Hamiltonian, PauliString

        terms = {}
        for qubit, label, coeff in entries:
            string = PauliString.single(label, qubit)
            terms[string] = terms.get(string, 0.0) + coeff
        h = Hamiltonian(terms)
        assert parse_hamiltonian(format_hamiltonian(h)).isclose(h, tol=1e-5)


class TestResultReport:
    def test_report_sections(self, paper_aais):
        result = QTurboCompiler(paper_aais).compile(ising_chain(3), 1.0)
        report = result.report()
        assert "stages (ms):" in report
        assert "Theorem-1 bound" in report
        assert "segment 0:" in report

    def test_failure_report_is_summary(self, paper_aais):
        from repro.baseline import SimuQStyleCompiler

        failed = SimuQStyleCompiler(
            paper_aais, max_restarts=1, tol=1e-12, branch_flips=0
        ).compile(ising_chain(3), 1.0)
        assert "FAILED" in failed.summary()
