"""Batch compilation engine: equality across executors, failure
isolation, deterministic ordering, and result aggregation."""

import json

import pytest

from repro.aais import RydbergAAIS
from repro.batch import (
    EXECUTOR_NAMES,
    BatchCompiler,
    BatchJob,
    SerialExecutor,
    resolve_executor,
)
from repro.devices import RydbergSpec
from repro.devices.base import TrapGeometry
from repro.errors import CompilationError
from repro.models import ising_chain, kitaev_chain


def chain_spec(n: int) -> RydbergSpec:
    return RydbergSpec(
        name="test-batch",
        delta_max=20.0,
        omega_max=2.5,
        geometry=TrapGeometry(
            extent=max(75.0, 9.0 * n), min_spacing=4.0, dimension=1
        ),
        max_time=4.0,
    )


def chain_aais(n: int) -> RydbergAAIS:
    return RydbergAAIS(n, spec=chain_spec(n))


def _square(value: int) -> int:
    """Module-level worker so the process pool can pickle it."""
    return value * value


@pytest.fixture(scope="module")
def fig3_jobs():
    """A small slice of the Fig-3 Rydberg workloads."""
    jobs = []
    for n in (3, 4, 5):
        jobs.append(
            BatchJob.constant(
                f"ising_chain-{n}", ising_chain(n), 1.0, chain_aais(n)
            )
        )
    jobs.append(
        BatchJob.constant("kitaev-4", kitaev_chain(4), 1.0, chain_aais(4))
    )
    return jobs


def assert_outcomes_identical(reference, other):
    """Per-job results must match bit for bit (timings excluded)."""
    assert [o.name for o in reference] == [o.name for o in other]
    for a, b in zip(reference, other):
        assert a.index == b.index
        assert a.ok == b.ok
        assert a.succeeded == b.succeeded
        if not a.succeeded:
            assert a.error_type == b.error_type
            continue
        ra, rb = a.result, b.result
        assert ra.execution_time == rb.execution_time
        assert ra.relative_error == rb.relative_error
        assert len(ra.segments) == len(rb.segments)
        for sa, sb in zip(ra.segments, rb.segments):
            assert sa.duration == sb.duration
            assert sa.values == sb.values
            assert sa.achieved_alphas == sb.achieved_alphas


class TestExecutorEquality:
    def test_serial_reference_succeeds(self, fig3_jobs):
        batch = BatchCompiler(executor="serial").compile_many(fig3_jobs)
        assert batch.all_succeeded
        assert batch.num_jobs == len(fig3_jobs)

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_pool_matches_serial_bit_identical(self, fig3_jobs, executor):
        serial = BatchCompiler(executor="serial").compile_many(fig3_jobs)
        pooled = BatchCompiler(
            executor=executor, workers=2
        ).compile_many(fig3_jobs)
        assert_outcomes_identical(serial.outcomes, pooled.outcomes)

    def test_serial_is_deterministic_across_runs(self, fig3_jobs):
        first = BatchCompiler(executor="serial").compile_many(fig3_jobs)
        second = BatchCompiler(executor="serial").compile_many(fig3_jobs)
        assert_outcomes_identical(first.outcomes, second.outcomes)


class TestFailureIsolation:
    def _jobs_with_failure(self):
        # A target touching more qubits than the AAIS has sites raises
        # CompilationError inside the worker.
        return [
            BatchJob.constant(
                "good-3", ising_chain(3), 1.0, chain_aais(3)
            ),
            BatchJob.constant(
                "bad", ising_chain(6), 1.0, chain_aais(3)
            ),
            BatchJob.constant(
                "good-4", ising_chain(4), 1.0, chain_aais(4)
            ),
        ]

    @pytest.mark.parametrize("executor", list(EXECUTOR_NAMES))
    def test_one_bad_job_does_not_sink_the_batch(self, executor):
        batch = BatchCompiler(executor=executor, workers=2).compile_many(
            self._jobs_with_failure()
        )
        assert batch.num_jobs == 3
        assert batch.num_succeeded == 2
        bad = batch.outcome("bad")
        assert not bad.ok
        assert bad.error_type == "CompilationError"
        assert "6 qubits" in bad.error
        assert batch.outcome("good-3").succeeded
        assert batch.outcome("good-4").succeeded

    def test_non_repro_exception_is_captured_too(self):
        # A malformed job (plain Hamiltonian smuggled in as the target)
        # raises AttributeError inside the worker; isolation must hold
        # for arbitrary exceptions, not just ReproError.
        bad = BatchJob(
            name="malformed",
            target=ising_chain(3),  # not a PiecewiseHamiltonian
            aais=chain_aais(3),
        )
        good = BatchJob.constant(
            "good", ising_chain(3), 1.0, chain_aais(3)
        )
        batch = BatchCompiler(executor="serial").compile_many([bad, good])
        assert batch.num_succeeded == 1
        assert not batch.outcome("malformed").ok
        assert batch.outcome("malformed").error_type == "AttributeError"
        assert batch.outcome("good").succeeded

    def test_failure_outcome_keeps_submission_order(self):
        batch = BatchCompiler(executor="serial").compile_many(
            self._jobs_with_failure()
        )
        assert [o.name for o in batch.outcomes] == ["good-3", "bad", "good-4"]
        assert [o.index for o in batch.outcomes] == [0, 1, 2]


class TestVerification:
    def test_fidelity_recorded_and_high(self):
        jobs = [
            BatchJob.constant(
                "chain-3", ising_chain(3), 1.0, chain_aais(3)
            )
        ]
        batch = BatchCompiler(executor="serial", verify=True).compile_many(
            jobs
        )
        fidelity = batch.outcomes[0].fidelity
        assert fidelity is not None
        assert fidelity > 0.99

    def test_verification_skipped_above_cap(self):
        jobs = [
            BatchJob.constant(
                "chain-4", ising_chain(4), 1.0, chain_aais(4)
            )
        ]
        batch = BatchCompiler(
            executor="serial", verify=True, verify_max_qubits=3
        ).compile_many(jobs)
        assert batch.outcomes[0].succeeded
        assert batch.outcomes[0].fidelity is None
        assert batch.outcomes[0].verify_skipped is True
        assert batch.outcomes[0].as_dict()["verify_skipped"] is True

    def test_no_verify_requested_is_not_marked_skipped(self):
        jobs = [
            BatchJob.constant(
                "chain-3", ising_chain(3), 1.0, chain_aais(3)
            )
        ]
        batch = BatchCompiler(executor="serial").compile_many(jobs)
        assert batch.outcomes[0].verify_skipped is False


class TestAggregation:
    def test_as_dict_is_json_serializable(self, fig3_jobs):
        batch = BatchCompiler(executor="serial").compile_many(fig3_jobs)
        payload = json.loads(json.dumps(batch.as_dict()))
        assert payload["num_jobs"] == len(fig3_jobs)
        assert len(payload["jobs"]) == len(fig3_jobs)
        assert payload["jobs"][0]["succeeded"] is True

    def test_summary_mentions_executor(self, fig3_jobs):
        batch = BatchCompiler(executor="serial").compile_many(fig3_jobs)
        assert "serial" in batch.summary()
        assert batch.jobs_per_second > 0

    def test_unknown_job_name_raises(self, fig3_jobs):
        batch = BatchCompiler(executor="serial").compile_many(fig3_jobs)
        with pytest.raises(KeyError):
            batch.outcome("nope")

    def test_empty_batch(self):
        batch = BatchCompiler(executor="serial").compile_many([])
        assert batch.num_jobs == 0
        assert batch.all_succeeded
        assert batch.jobs_per_second >= 0


class TestExecutorResolution:
    def test_unknown_name_raises(self):
        with pytest.raises(CompilationError):
            resolve_executor("gpu")

    def test_instance_passthrough(self):
        executor = SerialExecutor()
        assert resolve_executor(executor) is executor

    def test_bad_worker_count_raises(self):
        with pytest.raises(CompilationError):
            resolve_executor("thread", workers=0)

    def test_serial_reports_one_worker(self):
        assert SerialExecutor(workers=7).workers == 1


class TestChunkedDispatch:
    def test_chunksize_validated(self):
        from repro.batch.executors import ProcessBatchExecutor

        with pytest.raises(CompilationError):
            ProcessBatchExecutor(chunksize=0)
        with pytest.raises(CompilationError):
            resolve_executor("process", chunksize=-2)

    def test_explicit_chunksize_wins(self):
        from repro.batch.executors import ProcessBatchExecutor

        executor = ProcessBatchExecutor(workers=2, chunksize=5)
        assert executor.effective_chunksize(100) == 5

    def test_default_chunksize_scales_with_batch(self):
        from repro.batch.executors import ProcessBatchExecutor

        executor = ProcessBatchExecutor(workers=2)
        # ~4 chunks per worker, never below one job per chunk.
        assert executor.effective_chunksize(80) == 10
        assert executor.effective_chunksize(3) == 1

    def test_resolve_executor_threads_chunksize_through(self):
        executor = resolve_executor("process", workers=2, chunksize=3)
        assert executor.chunksize == 3

    def test_chunked_process_run_preserves_order(self):
        from repro.batch.executors import ProcessBatchExecutor

        executor = ProcessBatchExecutor(workers=2, chunksize=4)
        results = executor.run(_square, list(range(10)))
        assert results == [i * i for i in range(10)]

    def test_batch_compiler_accepts_chunksize(self, fig3_jobs):
        compiler = BatchCompiler(
            executor="process", workers=2, chunksize=2
        )
        assert compiler.executor.chunksize == 2
        batch = compiler.compile_many(fig3_jobs)
        assert batch.all_succeeded


class TestWorkerCompilerReuse:
    def test_equal_content_aais_share_one_digest(self):
        import pickle

        from repro.batch.compiler import _aais_digest

        original = chain_aais(4)
        clone = pickle.loads(pickle.dumps(original))  # process-pool path
        assert clone is not original
        assert _aais_digest(original) == _aais_digest(clone)
        assert _aais_digest(original) != _aais_digest(chain_aais(5))

    def test_reset_clears_memo(self):
        from repro.batch.compiler import (
            _WORKER_COMPILERS,
            reset_worker_compilers,
        )

        BatchCompiler(executor="serial").compile_many(
            [BatchJob.constant("c", ising_chain(3), 1.0, chain_aais(3))]
        )
        assert len(_WORKER_COMPILERS) > 0
        reset_worker_compilers()
        assert len(_WORKER_COMPILERS) == 0


class TestJobConstruction:
    def test_nonpositive_time_rejected(self):
        with pytest.raises(CompilationError):
            BatchJob.constant("bad", ising_chain(3), 0.0, chain_aais(3))

    def test_compiler_options_forwarded(self):
        job = BatchJob.constant(
            "opts", ising_chain(3), 1.0, chain_aais(3), refine=False
        )
        assert job.options == {"refine": False}
        batch = BatchCompiler(executor="serial").compile_many([job])
        assert batch.outcomes[0].succeeded
        assert batch.outcomes[0].result.refinement_applied is False
