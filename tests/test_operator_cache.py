"""Operator matrix cache: hit/miss semantics, stable hashing of equal
Hamiltonians, copy isolation, eviction, and compiler-level reuse."""

import numpy as np
import pytest

from repro import QTurboCompiler, RydbergAAIS
from repro.devices import paper_example_spec
from repro.hamiltonian import Hamiltonian, PauliString
from repro.hamiltonian.expression import x, z, zz
from repro.models import ising_chain
from repro.sim.operators import (
    MatrixCache,
    clear_operator_cache,
    configure_operator_cache,
    hamiltonian_matrix,
    operator_cache_stats,
    pauli_string_matrix,
)


@pytest.fixture(autouse=True)
def fresh_cache():
    """Each test starts and ends with empty, default-sized caches."""
    configure_operator_cache(string_maxsize=4096, hamiltonian_maxsize=512)
    yield
    configure_operator_cache(string_maxsize=4096, hamiltonian_maxsize=512)


class TestHitMissSemantics:
    def test_first_build_misses_second_hits(self):
        h = zz(0, 1) + 0.5 * x(0)
        hamiltonian_matrix(h, 2)
        stats = operator_cache_stats()["hamiltonian"]
        assert stats["misses"] == 1
        assert stats["hits"] == 0
        hamiltonian_matrix(h, 2)
        stats = operator_cache_stats()["hamiltonian"]
        assert stats["hits"] == 1
        assert stats["hit_rate"] == 0.5

    def test_different_num_qubits_are_distinct_entries(self):
        h = zz(0, 1)
        hamiltonian_matrix(h, 2)
        hamiltonian_matrix(h, 3)
        stats = operator_cache_stats()["hamiltonian"]
        assert stats["misses"] == 2
        assert stats["hits"] == 0

    def test_pauli_string_cache_hits(self):
        s = PauliString.from_pairs([(0, "X"), (1, "Z")])
        pauli_string_matrix(s, 2)
        pauli_string_matrix(s, 2)
        stats = operator_cache_stats()["pauli_string"]
        assert stats["hits"] >= 1

    def test_clear_resets_statistics(self):
        hamiltonian_matrix(zz(0, 1), 2)
        clear_operator_cache()
        stats = operator_cache_stats()
        assert stats["hamiltonian"]["hits"] == 0
        assert stats["hamiltonian"]["misses"] == 0
        assert stats["hamiltonian"]["size"] == 0

    def test_cached_value_is_correct(self):
        h = zz(0, 1) - 0.7 * z(0)
        first = hamiltonian_matrix(h, 2).toarray()
        second = hamiltonian_matrix(h, 2).toarray()
        assert np.array_equal(first, second)


class TestCopyIsolation:
    def test_mutating_returned_matrix_does_not_poison_cache(self):
        h = zz(0, 1)
        m = hamiltonian_matrix(h, 2)
        m.data[:] = 99.0
        clean = hamiltonian_matrix(h, 2).toarray()
        expected = np.diag([1, -1, -1, 1]).astype(complex)
        assert np.allclose(clean, expected)

    def test_no_copy_flag_returns_shared_instance(self):
        h = zz(0, 1)
        a = hamiltonian_matrix(h, 2, copy=False)
        b = hamiltonian_matrix(h, 2, copy=False)
        assert a is b


class TestHashStability:
    def test_equal_hamiltonians_share_canonical_key(self):
        a = zz(0, 1) + 0.5 * x(0)
        b = 0.5 * x(0) + zz(0, 1)  # different construction order
        assert a == b
        assert a.canonical_key() == b.canonical_key()
        assert a.stable_hash() == b.stable_hash()

    def test_equal_hamiltonians_share_cache_entry(self):
        a = zz(0, 1) + 0.5 * x(0)
        b = 0.5 * x(0) + zz(0, 1)
        hamiltonian_matrix(a, 2)
        hamiltonian_matrix(b, 2)
        stats = operator_cache_stats()["hamiltonian"]
        assert stats["misses"] == 1
        assert stats["hits"] == 1

    def test_different_coefficients_differ(self):
        assert zz(0, 1).stable_hash() != (2.0 * zz(0, 1)).stable_hash()
        assert (
            zz(0, 1).canonical_key() != (2.0 * zz(0, 1)).canonical_key()
        )

    def test_different_strings_differ(self):
        assert x(0).stable_hash() != z(0).stable_hash()

    def test_pauli_string_stable_hash(self):
        a = PauliString.from_pairs([(0, "X"), (2, "Z")])
        b = PauliString.from_pairs([(2, "Z"), (0, "X")])
        assert a.stable_hash() == b.stable_hash()
        assert a.canonical_key == b.canonical_key
        assert a.stable_hash() != PauliString.single("Y", 0).stable_hash()

    def test_hash_is_hex_digest(self):
        digest = ising_chain(3).stable_hash()
        assert isinstance(digest, str)
        int(digest, 16)  # valid hex


class TestEviction:
    def test_lru_eviction_counts(self):
        configure_operator_cache(hamiltonian_maxsize=2)
        hamiltonian_matrix(z(0), 1)
        hamiltonian_matrix(x(0), 1)
        hamiltonian_matrix(z(0) + x(0), 1)  # evicts z(0)
        stats = operator_cache_stats()["hamiltonian"]
        assert stats["evictions"] == 1
        assert stats["size"] == 2
        hamiltonian_matrix(z(0), 1)  # must rebuild
        assert operator_cache_stats()["hamiltonian"]["misses"] == 4

    def test_zero_capacity_disables_storage(self):
        cache = MatrixCache(0)
        cache.put("key", "value")
        assert len(cache) == 0
        assert cache.get("key") is None

    def test_matrix_cache_lru_order(self):
        cache = MatrixCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a
        cache.put("c", 3)  # evicts b, not a
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3


class TestCompilerStructuralCache:
    def test_repeat_compiles_reuse_linear_system(self):
        aais = RydbergAAIS(3, spec=paper_example_spec())
        compiler = QTurboCompiler(aais)
        target = ising_chain(3)
        first = compiler.compile(target, 1.0)
        second = compiler.compile(target, 2.0)  # same structure, new time
        stats = compiler.system_cache_stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 1
        assert first.success and second.success

    def test_cached_system_gives_identical_results(self):
        aais = RydbergAAIS(3, spec=paper_example_spec())
        compiler = QTurboCompiler(aais)
        fresh = QTurboCompiler(aais, system_cache_size=0)
        target = ising_chain(3)
        compiler.compile(target, 1.0)  # warm the cache
        warm = compiler.compile(target, 1.0)
        cold = fresh.compile(target, 1.0)
        assert warm.segments[0].values == cold.segments[0].values
        assert warm.execution_time == cold.execution_time

    def test_distinct_structures_get_distinct_systems(self):
        aais = RydbergAAIS(3, spec=paper_example_spec())
        compiler = QTurboCompiler(aais)
        compiler.compile(ising_chain(3), 1.0)
        compiler.compile(Hamiltonian({PauliString.single("X", 0): 1.0}), 1.0)
        stats = compiler.system_cache_stats()
        assert stats["misses"] == 2
        assert stats["size"] == 2
