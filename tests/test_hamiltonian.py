"""Unit tests for Hamiltonian expressions."""

import pytest

from repro.errors import HamiltonianError
from repro.hamiltonian import (
    Hamiltonian,
    PauliString,
    number_number,
    number_op,
    x,
    xx,
    y,
    yy,
    z,
    zz,
)


class TestConstruction:
    def test_zero(self):
        assert Hamiltonian.zero().is_zero

    def test_tiny_coefficients_dropped(self):
        h = Hamiltonian({PauliString.single("X", 0): 1e-15})
        assert h.is_zero

    def test_rejects_complex_coefficient(self):
        with pytest.raises(HamiltonianError):
            Hamiltonian({PauliString.single("X", 0): 1 + 1j})

    def test_accepts_real_valued_complex(self):
        h = Hamiltonian({PauliString.single("X", 0): complex(2.0, 0.0)})
        assert h.coefficient(PauliString.single("X", 0)) == 2.0

    def test_rejects_non_pauli_keys(self):
        with pytest.raises(HamiltonianError):
            Hamiltonian({"X0": 1.0})  # type: ignore

    def test_from_pairs_accumulates(self):
        p = PauliString.single("Z", 0)
        h = Hamiltonian.from_pairs([(p, 1.0), (p, 2.0)])
        assert h.coefficient(p) == 3.0


class TestAlgebra:
    def test_addition_merges_terms(self):
        h = x(0) + x(0)
        assert h.coefficient(PauliString.single("X", 0)) == 2.0

    def test_subtraction_cancels(self):
        assert (x(0) - x(0)).is_zero

    def test_scalar_multiplication(self):
        h = 3.0 * x(1)
        assert h.coefficient(PauliString.single("X", 1)) == 3.0

    def test_division(self):
        h = zz(0, 1) / 2
        assert h.coefficient(PauliString.from_pairs([(0, "Z"), (1, "Z")])) == 0.5

    def test_division_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            x(0) / 0

    def test_negation(self):
        h = -z(0)
        assert h.coefficient(PauliString.single("Z", 0)) == -1.0

    def test_iteration_sorted(self):
        h = z(3) + x(0)
        strings = [s for s, _ in h]
        assert strings == sorted(strings)


class TestInspection:
    def test_num_qubits(self):
        assert (x(0) + z(4)).num_qubits() == 5
        assert Hamiltonian.zero().num_qubits() == 0

    def test_support(self):
        assert (zz(1, 3) + x(5)).support() == (1, 3, 5)

    def test_l1_norm(self):
        h = 2 * x(0) - 3 * z(1)
        assert h.l1_norm() == pytest.approx(5.0)

    def test_without_identity(self):
        h = number_op(0)  # 0.5 I - 0.5 Z
        stripped = h.without_identity()
        assert stripped.coefficient(PauliString.identity()) == 0.0
        assert stripped.coefficient(PauliString.single("Z", 0)) == -0.5

    def test_max_abs_coefficient(self):
        h = 2 * x(0) - 7 * z(1)
        assert h.max_abs_coefficient() == 7.0

    def test_isclose(self):
        a = x(0) + 1e-12 * z(1)
        b = x(0)
        assert a.isclose(b, tol=1e-9)
        assert not (x(0) + z(1)).isclose(x(0))


class TestConstructors:
    def test_x_y_z(self):
        assert x(0).coefficient(PauliString.single("X", 0)) == 1.0
        assert y(1).coefficient(PauliString.single("Y", 1)) == 1.0
        assert z(2).coefficient(PauliString.single("Z", 2)) == 1.0

    def test_two_qubit_couplings(self):
        assert zz(0, 1).num_terms == 1
        assert xx(0, 1).coefficient(
            PauliString.from_pairs([(0, "X"), (1, "X")])
        ) == 1.0
        assert yy(2, 5).coefficient(
            PauliString.from_pairs([(2, "Y"), (5, "Y")])
        ) == 1.0

    def test_number_op_expansion(self):
        h = number_op(2)
        assert h.coefficient(PauliString.identity()) == 0.5
        assert h.coefficient(PauliString.single("Z", 2)) == -0.5

    def test_number_number_expansion(self):
        h = number_number(0, 1)
        assert h.coefficient(PauliString.identity()) == 0.25
        assert h.coefficient(PauliString.single("Z", 0)) == -0.25
        assert h.coefficient(PauliString.single("Z", 1)) == -0.25
        assert (
            h.coefficient(PauliString.from_pairs([(0, "Z"), (1, "Z")]))
            == 0.25
        )

    def test_number_number_same_qubit_rejected(self):
        with pytest.raises(HamiltonianError):
            number_number(1, 1)


class TestRelabeling:
    def test_relabeled_hamiltonian(self):
        h = zz(0, 1) + x(0)
        q = h.relabeled({0: 2, 1: 0})
        assert q.coefficient(
            PauliString.from_pairs([(0, "Z"), (2, "Z")])
        ) == 1.0
        assert q.coefficient(PauliString.single("X", 2)) == 1.0
