"""Unit tests for evolution-time optimization (Section 5.1)."""

import pytest

from repro.core.local_solvers import select_strategy
from repro.core.partition import partition_channels
from repro.core.time_optimizer import (
    MIN_TIME_FLOOR,
    optimize_evolution_time,
)
from repro.errors import InfeasibleError


@pytest.fixture
def paper_strategies(paper_aais):
    components = partition_channels(paper_aais.channels)
    return [select_strategy(c) for c in components]


def paper_alphas():
    """Equation (5)'s solution for the 3-qubit Ising chain."""
    return {
        "vdw_0_1": 1.0,
        "vdw_1_2": 1.0,
        "vdw_0_2": 0.0,
        "detuning_0": 1.0,
        "detuning_1": 2.0,
        "detuning_2": 1.0,
        "rabi_cos_0": 1.0,
        "rabi_sin_0": 0.0,
        "rabi_cos_1": 1.0,
        "rabi_sin_1": 0.0,
        "rabi_cos_2": 1.0,
        "rabi_sin_2": 0.0,
    }


class TestBottleneck:
    def test_paper_bottleneck_is_rabi(self, paper_strategies):
        outcome = optimize_evolution_time(paper_strategies, paper_alphas())
        assert outcome.t_sim == pytest.approx(0.8)
        assert outcome.bottleneck.startswith("rabi")

    def test_per_component_times_match_cases(self, paper_strategies):
        outcome = optimize_evolution_time(paper_strategies, paper_alphas())
        per = outcome.per_component
        # Case 1: detunings at 0.1 / 0.2 / 0.1 µs.
        assert per["detuning_0"] == pytest.approx(0.1)
        assert per["detuning_1"] == pytest.approx(0.2)
        assert per["detuning_2"] == pytest.approx(0.1)
        # Case 2: every Rabi drive at 0.8 µs.
        assert per["rabi_cos_0"] == pytest.approx(0.8)

    def test_floor_applies_when_all_zero(self, paper_strategies):
        zeros = {name: 0.0 for name in paper_alphas()}
        outcome = optimize_evolution_time(paper_strategies, zeros)
        assert outcome.t_sim == MIN_TIME_FLOOR

    def test_custom_floor(self, paper_strategies):
        zeros = {name: 0.0 for name in paper_alphas()}
        outcome = optimize_evolution_time(
            paper_strategies, zeros, t_floor=0.5
        )
        assert outcome.t_sim == 0.5

    def test_infeasible_raises(self, paper_strategies):
        alphas = paper_alphas()
        alphas["vdw_0_1"] = -1.0  # repulsive interaction can't be negative
        with pytest.raises(InfeasibleError):
            optimize_evolution_time(paper_strategies, alphas)

    def test_scaling_targets_scales_time(self, paper_strategies):
        doubled = {k: 2 * v for k, v in paper_alphas().items()}
        outcome = optimize_evolution_time(paper_strategies, doubled)
        assert outcome.t_sim == pytest.approx(1.6)
