"""Edge cases and failure-injection tests across module boundaries."""

import math

import numpy as np
import pytest

from repro import QTurboCompiler
from repro.aais import HeisenbergAAIS, RydbergAAIS
from repro.devices import HeisenbergSpec, RydbergSpec, aquila_spec
from repro.devices.base import TrapGeometry
from repro.hamiltonian import Hamiltonian, PauliString, x, z, zz
from repro.models import ising_chain


class TestCompilerEdgeCases:
    def test_single_term_target(self, paper_aais):
        result = QTurboCompiler(paper_aais).compile(x(0), 1.0)
        assert result.success
        values = result.segments[0].values
        # Only qubit 0 is driven.
        assert values["omega_0"] > 0
        assert values["omega_1"] == 0.0

    def test_pure_zz_target(self, paper_aais):
        result = QTurboCompiler(paper_aais).compile(zz(0, 1), 1.0)
        assert result.success
        assert result.relative_error < 0.05

    def test_identity_only_target(self, paper_aais):
        target = Hamiltonian({PauliString.identity(): 3.0})
        result = QTurboCompiler(paper_aais).compile(target, 1.0)
        # A global phase needs no drive at all.
        assert result.success
        assert result.execution_time == pytest.approx(
            QTurboCompiler(paper_aais).t_floor
        )

    def test_tiny_target_time(self, paper_aais):
        result = QTurboCompiler(paper_aais).compile(ising_chain(3), 1e-3)
        assert result.success
        assert result.execution_time <= 0.01

    def test_large_coupling_stretches_time(self, paper_aais):
        weak = QTurboCompiler(paper_aais).compile(
            ising_chain(3, j=1.0, h=1.0), 1.0
        )
        strong = QTurboCompiler(paper_aais).compile(
            ising_chain(3, j=1.0, h=4.0), 1.0
        )
        # Stronger X fields need longer Rabi bottleneck time.
        assert strong.execution_time > weak.execution_time

    def test_target_smaller_than_device(self, chain_spec):
        """A 3-qubit target on a 5-atom device: idle atoms stay idle."""
        aais = RydbergAAIS(5, spec=chain_spec)
        result = QTurboCompiler(aais).compile(ising_chain(3), 1.0)
        assert result.success
        values = result.segments[0].values
        assert values["omega_4"] == 0.0

    def test_y_field_target(self, paper_aais):
        """Y terms are reachable via the Rabi sin quadrature."""
        from repro.hamiltonian import y

        target = y(0) + y(1) + y(2)
        result = QTurboCompiler(paper_aais).compile(target, 1.0)
        assert result.success
        # lsq_linear tolerance leaves ~1e-5; the solve is exact physics.
        assert result.relative_error < 1e-3
        # sin quadrature: φ = 3π/2 realizes -(Ω/2) sin φ = +Ω/2.
        phi = result.segments[0].values["phi_0"]
        assert phi == pytest.approx(3 * math.pi / 2)

    def test_negative_detuning_target(self, paper_aais):
        """Z terms with either sign are fine: Δ may be negative."""
        target = -1.0 * z(0) + x(1)
        result = QTurboCompiler(paper_aais).compile(target, 1.0)
        assert result.success
        assert result.segments[0].values["delta_0"] < 0


class TestHeisenbergEdgeCases:
    def test_single_qubit_device(self):
        aais = HeisenbergAAIS(1)
        result = QTurboCompiler(aais).compile(x(0) + 0.5 * z(0), 1.0)
        assert result.success
        assert result.relative_error < 1e-9

    def test_mixed_sign_couplings(self):
        aais = HeisenbergAAIS(3)
        target = zz(0, 1) - zz(1, 2) + x(1)
        result = QTurboCompiler(aais).compile(target, 1.0)
        assert result.success
        assert result.relative_error < 1e-9

    def test_time_scales_with_largest_coupling(self):
        spec = HeisenbergSpec(single_max=2.0, pair_max=0.5)
        aais = HeisenbergAAIS(3, spec=spec)
        result = QTurboCompiler(aais).compile(3.0 * zz(0, 1), 1.0)
        assert result.execution_time == pytest.approx(6.0)


class TestNoiseOnHeisenberg:
    def test_amplitude_noise_applies_to_drives(self):
        from repro.sim import NoisySimulator, aquila_noise

        aais = HeisenbergAAIS(3)
        result = QTurboCompiler(aais).compile(ising_chain(3), 1.0)
        noise = aquila_noise(
            amplitude_relative_sigma=0.05, t1=None, p01=0.0, p10=0.0
        )
        sim = NoisySimulator(noise=noise, noise_samples=4, seed=0)
        samples = sim.run(result.schedule, shots=64)
        assert samples.shape == (64, 3)


class TestExportEdgeCases:
    def test_ahs_mean_over_sites(self, chain_spec):
        from repro.pulse import to_ahs_program

        aais = RydbergAAIS(3, spec=chain_spec)
        result = QTurboCompiler(aais).compile(ising_chain(3), 1.0)
        program = to_ahs_program(result.schedule)
        values = result.segments[0].values
        expected = np.mean([values[f"omega_{i}"] for i in range(3)])
        assert program["driving_field"]["omega"][0] == pytest.approx(
            expected
        )

    def test_ahs_register_2d(self, planar_spec):
        from repro.models import ising_cycle
        from repro.pulse import to_ahs_program

        aais = RydbergAAIS(4, spec=planar_spec)
        result = QTurboCompiler(aais).compile(ising_cycle(4), 1.0)
        program = to_ahs_program(result.schedule)
        assert all(len(point) == 2 for point in program["register"])


class TestDeviceMaxTimeWarning:
    def test_overlong_schedule_warns_but_compiles(self):
        # Δ_max tiny → detuning bottleneck forces a very long pulse
        # exceeding the 4 µs device cap; the compiler flags it.
        spec = RydbergSpec(
            name="slow",
            delta_max=0.2,
            omega_max=2.5,
            geometry=TrapGeometry(extent=200.0, min_spacing=4.0, dimension=1),
            max_time=4.0,
        )
        aais = RydbergAAIS(3, spec=spec)
        from repro.hamiltonian import z

        target = z(0) + z(1) + z(2) + x(0)
        result = QTurboCompiler(aais).compile(target, 1.0)
        assert result.success
        assert result.execution_time > 4.0
        assert any("exceeds" in w for w in result.warnings)

    def test_global_drive_nonuniform_target_best_effort(self):
        """Global Ω cannot realize per-site X fields exactly."""
        aais = RydbergAAIS(3, spec=aquila_spec(omega_max=6.28))
        target = 1.0 * x(0) + 0.5 * x(1) + 0.25 * x(2)
        result = QTurboCompiler(aais).compile(target, 1.0)
        assert result.success
        # The global fit lands on the mean; the miss shows as error.
        assert result.relative_error > 0.1
