"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.aais import HeisenbergAAIS, RydbergAAIS
from repro.devices import HeisenbergSpec, RydbergSpec, paper_example_spec
from repro.devices.base import TrapGeometry


@pytest.fixture
def paper_aais():
    """The Section-5 worked-example device: 3 atoms, Δ≤20, Ω≤2.5."""
    return RydbergAAIS(3, spec=paper_example_spec())


@pytest.fixture
def chain_spec():
    """A roomy 1-D Rydberg trap for chain benchmarks."""
    return RydbergSpec(
        name="test-chain",
        delta_max=20.0,
        omega_max=2.5,
        geometry=TrapGeometry(extent=200.0, min_spacing=4.0, dimension=1),
        max_time=4.0,
    )


@pytest.fixture
def planar_spec():
    """A 2-D Rydberg trap for cycle benchmarks."""
    return RydbergSpec(
        name="test-planar",
        delta_max=20.0,
        omega_max=2.5,
        geometry=TrapGeometry(extent=80.0, min_spacing=4.0, dimension=2),
        max_time=4.0,
    )


@pytest.fixture
def heisenberg_aais():
    return HeisenbergAAIS(4, spec=HeisenbergSpec())
