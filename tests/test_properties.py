"""Property-based tests (hypothesis) on core data structures and invariants."""


import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.error_bounds import theorem1_bound
from repro.core.linear_system import b_difference_l1, l1_norm
from repro.core.partition import partition_channels
from repro.hamiltonian import Hamiltonian, PauliString
from repro.sim.operators import pauli_string_matrix

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
pauli_labels = st.sampled_from(["X", "Y", "Z"])


@st.composite
def pauli_strings(draw, max_qubits=5):
    n = draw(st.integers(min_value=0, max_value=max_qubits))
    qubits = draw(
        st.lists(
            st.integers(min_value=0, max_value=max_qubits - 1) if max_qubits else st.nothing(),
            min_size=0,
            max_size=n,
            unique=True,
        )
    ) if max_qubits else []
    ops = {q: draw(pauli_labels) for q in qubits}
    return PauliString(ops)


@st.composite
def hamiltonians(draw, max_terms=5, max_qubits=4):
    terms = {}
    for _ in range(draw(st.integers(0, max_terms))):
        string = draw(pauli_strings(max_qubits=max_qubits))
        coeff = draw(
            st.floats(
                min_value=-10, max_value=10, allow_nan=False, width=32
            )
        )
        terms[string] = coeff
    return Hamiltonian(terms)


# ----------------------------------------------------------------------
# Pauli algebra properties
# ----------------------------------------------------------------------
class TestPauliProperties:
    @given(pauli_strings(), pauli_strings())
    def test_product_phase_is_fourth_root(self, a, b):
        phase, _ = a * b
        assert phase in (1, -1, 1j, -1j)

    @given(pauli_strings())
    def test_self_product_is_identity(self, p):
        phase, result = p * p
        assert phase == 1
        assert result.is_identity

    @given(pauli_strings(), pauli_strings())
    def test_commutation_is_symmetric(self, a, b):
        assert a.commutes_with(b) == b.commutes_with(a)

    @given(pauli_strings(), pauli_strings())
    @settings(max_examples=30, deadline=None)
    def test_product_matches_matrix_product(self, a, b):
        n = max(a.max_qubit(), b.max_qubit(), 0) + 1
        if n > 4:
            return
        phase, result = a * b
        lhs = (
            pauli_string_matrix(a, n).toarray()
            @ pauli_string_matrix(b, n).toarray()
        )
        rhs = phase * pauli_string_matrix(result, n).toarray()
        assert np.allclose(lhs, rhs)

    @given(pauli_strings(), pauli_strings())
    @settings(max_examples=30, deadline=None)
    def test_commutation_matches_matrices(self, a, b):
        n = max(a.max_qubit(), b.max_qubit(), 0) + 1
        if n > 4:
            return
        ma = pauli_string_matrix(a, n).toarray()
        mb = pauli_string_matrix(b, n).toarray()
        commutes = np.allclose(ma @ mb, mb @ ma)
        assert commutes == a.commutes_with(b)


# ----------------------------------------------------------------------
# Hamiltonian vector-space properties
# ----------------------------------------------------------------------
class TestHamiltonianProperties:
    @given(hamiltonians(), hamiltonians())
    def test_addition_commutes(self, a, b):
        assert (a + b).isclose(b + a, tol=1e-6)

    @given(hamiltonians())
    def test_additive_inverse(self, h):
        assert (h - h).is_zero or (h - h).l1_norm() < 1e-6

    @given(
        hamiltonians(),
        st.floats(min_value=-5, max_value=5, allow_nan=False),
    )
    def test_scalar_distributes(self, h, c):
        lhs = c * (h + h)
        rhs = c * h + c * h
        assert lhs.isclose(rhs, tol=1e-5)

    @given(hamiltonians())
    def test_l1_norm_nonnegative_and_triangle(self, h):
        assert h.l1_norm() >= 0
        assert (h + h).l1_norm() <= 2 * h.l1_norm() + 1e-6

    @given(hamiltonians())
    def test_without_identity_removes_only_identity(self, h):
        stripped = h.without_identity()
        assert stripped.coefficient(PauliString.identity()) == 0.0
        for string, coeff in stripped.terms.items():
            assert coeff == pytest.approx(h.coefficient(string))


# ----------------------------------------------------------------------
# Metric / bound properties
# ----------------------------------------------------------------------
class TestMetricProperties:
    @given(hamiltonians(), hamiltonians())
    def test_b_difference_is_metric_like(self, a, b):
        d_ab = b_difference_l1(a.terms, b.terms)
        d_ba = b_difference_l1(b.terms, a.terms)
        assert d_ab == pytest.approx(d_ba, rel=1e-9, abs=1e-9)
        assert d_ab >= 0
        assert b_difference_l1(a.terms, a.terms) == 0

    @given(
        st.floats(min_value=0, max_value=100, allow_nan=False),
        st.floats(min_value=0, max_value=10, allow_nan=False),
        st.lists(
            st.floats(min_value=0, max_value=10, allow_nan=False),
            max_size=5,
        ),
    )
    def test_theorem1_bound_nonnegative_monotone(self, norm, eps1, eps2):
        bound = theorem1_bound(norm, eps1, eps2)
        assert bound >= eps1 - 1e-12
        assert theorem1_bound(norm, eps1 + 1.0, eps2) > bound

    @given(hamiltonians())
    def test_l1_norm_ignores_identity(self, h):
        with_identity = dict(h.terms)
        with_identity[PauliString.identity()] = 99.0
        assert l1_norm(with_identity) == pytest.approx(
            l1_norm(h.terms), rel=1e-9, abs=1e-9
        )


# ----------------------------------------------------------------------
# Partition invariants
# ----------------------------------------------------------------------
class TestPartitionProperties:
    @given(st.integers(min_value=2, max_value=6))
    @settings(max_examples=10, deadline=None)
    def test_partition_covers_all_channels_exactly_once(self, n):
        from repro.aais import RydbergAAIS

        aais = RydbergAAIS(n)
        components = partition_channels(aais.channels)
        seen = [c.name for comp in components for c in comp.channels]
        assert sorted(seen) == sorted(c.name for c in aais.channels)

    @given(st.integers(min_value=2, max_value=6))
    @settings(max_examples=10, deadline=None)
    def test_no_variable_spans_components(self, n):
        from repro.aais import RydbergAAIS

        aais = RydbergAAIS(n)
        components = partition_channels(aais.channels)
        owner = {}
        for index, component in enumerate(components):
            for variable in component.variables:
                assert variable.name not in owner
                owner[variable.name] = index


# ----------------------------------------------------------------------
# End-to-end compiler invariants on random Ising-like targets
# ----------------------------------------------------------------------
class TestCompilerProperties:
    @given(
        st.floats(min_value=0.1, max_value=2.0, allow_nan=False),
        st.floats(min_value=0.1, max_value=2.0, allow_nan=False),
        st.floats(min_value=0.25, max_value=2.0, allow_nan=False),
    )
    @settings(max_examples=10, deadline=None)
    def test_error_within_theorem1_bound(self, j, h, t_target):
        from repro import QTurboCompiler
        from repro.aais import RydbergAAIS
        from repro.devices import paper_example_spec
        from repro.models import ising_chain

        aais = RydbergAAIS(3, spec=paper_example_spec())
        result = QTurboCompiler(aais).compile(
            ising_chain(3, j=j, h=h), t_target
        )
        assert result.success
        assert result.error_l1 <= result.error_bound + 1e-6

    @given(st.floats(min_value=0.2, max_value=2.0, allow_nan=False))
    @settings(max_examples=10, deadline=None)
    def test_heisenberg_always_exact(self, j):
        from repro import QTurboCompiler
        from repro.aais import HeisenbergAAIS
        from repro.models import ising_chain

        aais = HeisenbergAAIS(3)
        result = QTurboCompiler(aais).compile(ising_chain(3, j=j), 1.0)
        assert result.success
        assert result.relative_error < 1e-8

    @given(
        st.floats(min_value=0.25, max_value=3.0, allow_nan=False),
    )
    @settings(max_examples=10, deadline=None)
    def test_execution_time_scales_linearly_with_target(self, t_target):
        from repro import QTurboCompiler
        from repro.aais import RydbergAAIS
        from repro.devices import paper_example_spec
        from repro.models import ising_chain

        aais = RydbergAAIS(3, spec=paper_example_spec())
        result = QTurboCompiler(aais).compile(ising_chain(3), t_target)
        assert result.success
        # Bottleneck is the Rabi drive: T_sim = 0.8 · T_tar.
        assert result.execution_time == pytest.approx(
            0.8 * t_target, rel=1e-6
        )
