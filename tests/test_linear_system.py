"""Unit tests for the global linear equation system (Section 4.1)."""

import numpy as np
import pytest

from repro.aais import HeisenbergAAIS
from repro.core.linear_system import (
    GlobalLinearSystem,
    b_difference_l1,
    l1_norm,
)
from repro.hamiltonian import PauliString
from repro.models import ising_chain


@pytest.fixture
def paper_system(paper_aais):
    target = ising_chain(3)
    return (
        GlobalLinearSystem(
            paper_aais.channels, extra_terms=tuple(target.terms)
        ),
        target,
    )


class TestStructure:
    def test_rows_are_union_of_terms(self, paper_system):
        system, _target = paper_system
        terms = set(system.terms)
        # 3 ZZ pairs + 3 Z + 3 X + 3 Y = 12 rows, identity excluded.
        assert len(terms) == 12
        assert PauliString.identity() not in terms

    def test_columns_match_channels(self, paper_aais, paper_system):
        system, _ = paper_system
        assert system.matrix.shape == (12, len(paper_aais.channels))

    def test_matrix_entries_match_paper_signs(self, paper_aais, paper_system):
        system, _ = paper_system
        z1 = PauliString.single("Z", 0)
        row = system.terms.index(z1)
        col_vdw = system.channel_names.index("vdw_0_1")
        col_det = system.channel_names.index("detuning_0")
        dense = system.matrix.toarray()
        assert dense[row, col_vdw] == -1.0
        assert dense[row, col_det] == 1.0

    def test_matrix_l1_norm_is_max_column_sum(self, paper_system):
        system, _ = paper_system
        dense = np.abs(system.matrix.toarray())
        assert system.matrix_l1_norm() == pytest.approx(
            dense.sum(axis=0).max()
        )

    def test_is_bounded_for_rydberg(self, paper_system):
        system, _ = paper_system
        assert system.is_bounded  # van der Waals α ≥ 0

    def test_unbounded_for_heisenberg(self):
        aais = HeisenbergAAIS(3)
        system = GlobalLinearSystem(aais.channels)
        assert not system.is_bounded


class TestSolve:
    def test_paper_alphas(self, paper_system):
        system, target = paper_system
        b = {t: c for t, c in target.terms.items()}
        solution = system.solve(b)
        a = solution.alphas
        # Equation (5)'s solution.
        assert a["vdw_0_1"] == pytest.approx(1.0, abs=1e-6)
        assert a["vdw_1_2"] == pytest.approx(1.0, abs=1e-6)
        assert a["vdw_0_2"] == pytest.approx(0.0, abs=1e-6)
        assert a["detuning_0"] == pytest.approx(1.0, abs=1e-6)
        assert a["detuning_1"] == pytest.approx(2.0, abs=1e-6)
        assert a["detuning_2"] == pytest.approx(1.0, abs=1e-6)
        assert a["rabi_cos_0"] == pytest.approx(1.0, abs=1e-6)
        assert a["rabi_sin_0"] == pytest.approx(0.0, abs=1e-6)
        assert solution.residual_l1 < 1e-6

    def test_scales_with_duration(self, paper_system):
        system, target = paper_system
        b2 = {t: 2 * c for t, c in target.terms.items()}
        solution = system.solve(b2)
        assert solution.alphas["detuning_1"] == pytest.approx(4.0, abs=1e-6)

    def test_negative_vdw_target_clipped_to_bound(self, paper_aais):
        system = GlobalLinearSystem(paper_aais.channels)
        zz = PauliString.from_pairs([(0, "Z"), (1, "Z")])
        solution = system.solve({zz: -1.0})
        # A repulsive interaction cannot produce a negative ZZ weight.
        assert solution.alphas["vdw_0_1"] >= -1e-9
        assert solution.residual_l1 > 0.5

    def test_unreachable_terms_reported(self, paper_aais):
        system = GlobalLinearSystem(
            paper_aais.channels,
            extra_terms=(PauliString.from_pairs([(0, "X"), (1, "X")]),),
        )
        xx = PauliString.from_pairs([(0, "X"), (1, "X")])
        solution = system.solve({xx: 1.0})
        assert xx in solution.unreachable_terms
        assert solution.residual_l1 == pytest.approx(1.0)

    def test_achieved_b_roundtrip(self, paper_system):
        system, target = paper_system
        b = dict(target.terms)
        solution = system.solve(b)
        achieved = system.achieved_b(solution.alphas)
        for term, value in b.items():
            if term.is_identity:
                continue
            assert achieved[term] == pytest.approx(value, abs=1e-6)

    def test_residual_vector_zero_at_solution(self, paper_system):
        system, target = paper_system
        solution = system.solve(dict(target.terms))
        residual = system.residual_vector(solution.alphas, dict(target.terms))
        assert np.abs(residual).max() < 1e-6

    def test_columns_submatrix(self, paper_system):
        system, _ = paper_system
        sub = system.columns(["detuning_0", "detuning_1"])
        assert sub.shape == (12, 2)

    def test_columns_unknown_channel(self, paper_system):
        from repro.errors import CompilationError

        system, _ = paper_system
        with pytest.raises(CompilationError):
            system.columns(["nope"])

    def test_alpha_vector_ordering(self, paper_system):
        system, target = paper_system
        solution = system.solve(dict(target.terms))
        vec = solution.alpha_vector(system.channel_names)
        assert len(vec) == len(system.channel_names)


class TestNormHelpers:
    def test_l1_norm_skips_identity(self):
        values = {
            PauliString.identity(): 100.0,
            PauliString.single("X", 0): -2.0,
        }
        assert l1_norm(values) == 2.0

    def test_b_difference(self):
        a = {PauliString.single("X", 0): 1.0}
        b = {PauliString.single("X", 0): 0.25,
             PauliString.single("Z", 1): 0.5}
        assert b_difference_l1(a, b) == pytest.approx(1.25)

    def test_b_difference_identity_ignored(self):
        a = {PauliString.identity(): 5.0}
        assert b_difference_l1(a, {}) == 0.0
