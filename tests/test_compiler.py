"""Integration-level tests of the QTurbo compiler pipeline."""


import pytest

from repro import QTurboCompiler
from repro.aais import HeisenbergAAIS, RydbergAAIS
from repro.devices import HeisenbergSpec, aquila_spec
from repro.errors import CompilationError
from repro.hamiltonian import PiecewiseHamiltonian, x, zz
from repro.models import (
    heisenberg_chain,
    ising_chain,
    ising_cycle,
    kitaev_chain,
    mis_chain,
    pxp_chain,
)


class TestRydbergCompilation:
    def test_paper_worked_example(self, paper_aais):
        result = QTurboCompiler(paper_aais).compile(ising_chain(3), 1.0)
        assert result.success
        assert result.execution_time == pytest.approx(0.8)
        values = result.segments[0].values
        # Section 5's solution (post-refinement, Section 6.2).
        assert values["omega_0"] == pytest.approx(2.5)
        assert values["omega_1"] == pytest.approx(2.5)
        assert values["phi_0"] == pytest.approx(0.0, abs=1e-9)
        assert values["delta_1"] == pytest.approx(5.0, abs=0.05)
        assert values["delta_0"] == pytest.approx(2.55, abs=0.05)
        xs = sorted(values[f"x_{i}"] for i in range(3))
        assert xs[1] - xs[0] == pytest.approx(7.46, abs=0.05)
        assert xs[2] - xs[1] == pytest.approx(7.46, abs=0.05)

    def test_relative_error_small(self, paper_aais):
        result = QTurboCompiler(paper_aais).compile(ising_chain(3), 1.0)
        assert result.relative_error < 0.01

    def test_schedule_is_valid(self, paper_aais):
        result = QTurboCompiler(paper_aais).compile(ising_chain(3), 1.0)
        assert result.schedule is not None
        assert result.schedule.validate() == []

    def test_chain_scaling(self, chain_spec):
        for n in (4, 8):
            aais = RydbergAAIS(n, spec=chain_spec)
            result = QTurboCompiler(aais).compile(ising_chain(n), 1.0)
            assert result.success
            assert result.execution_time == pytest.approx(0.8)
            assert result.relative_error < 0.02

    def test_cycle_on_planar_trap(self, planar_spec):
        aais = RydbergAAIS(6, spec=planar_spec)
        result = QTurboCompiler(aais).compile(ising_cycle(6), 1.0)
        assert result.success
        assert result.relative_error < 0.05

    def test_kitaev_compiles(self, chain_spec):
        aais = RydbergAAIS(4, spec=chain_spec)
        result = QTurboCompiler(aais).compile(kitaev_chain(4), 1.0)
        assert result.success
        assert result.relative_error < 0.05

    def test_pxp_compiles(self, chain_spec):
        aais = RydbergAAIS(4, spec=chain_spec)
        result = QTurboCompiler(aais).compile(
            pxp_chain(4, j=1.26, h=0.126), 5.0
        )
        assert result.success

    def test_global_drive_uniform_model(self):
        aais = RydbergAAIS(6, spec=aquila_spec(omega_max=6.28))
        result = QTurboCompiler(aais).compile(
            ising_cycle(6, j=0.157, h=0.785), 1.0
        )
        assert result.success
        assert result.execution_time < 1.0  # much shorter than target
        values = result.segments[0].values
        assert "omega" in values and "delta" in values

    def test_stage_timings_populated(self, paper_aais):
        result = QTurboCompiler(paper_aais).compile(ising_chain(3), 1.0)
        timings = result.stage_timings
        assert timings.total > 0
        assert timings.linear > 0
        assert timings.local_solve >= 0


class TestHeisenbergCompilation:
    def test_exact_solution(self):
        aais = HeisenbergAAIS(5)
        result = QTurboCompiler(aais).compile(ising_chain(5), 1.0)
        assert result.success
        assert result.relative_error == pytest.approx(0.0, abs=1e-9)

    def test_bottleneck_is_pair_coupling(self):
        spec = HeisenbergSpec(single_max=2.0, pair_max=0.5)
        aais = HeisenbergAAIS(4, spec=spec)
        result = QTurboCompiler(aais).compile(ising_chain(4), 1.0)
        # ZZ target 1.0 at pair_max 0.5 → T = 2 µs.
        assert result.execution_time == pytest.approx(2.0)

    def test_heisenberg_chain_model(self):
        aais = HeisenbergAAIS(4)
        result = QTurboCompiler(aais).compile(heisenberg_chain(4), 1.0)
        assert result.success
        assert result.relative_error < 1e-9

    def test_unreachable_term_warns(self):
        # A chain-topology device cannot produce a (0,2) coupling.
        aais = HeisenbergAAIS(3, spec=HeisenbergSpec(topology="chain"))
        result = QTurboCompiler(aais).compile(zz(0, 2) + x(1), 1.0)
        assert result.success
        assert any("unreachable" in w for w in result.warnings)
        assert result.relative_error > 0.3


class TestTimeDependentCompilation:
    def test_mis_chain_four_segments(self, chain_spec):
        aais = RydbergAAIS(4, spec=chain_spec)
        td = mis_chain(4, duration=1.0)
        result = QTurboCompiler(aais).compile_time_dependent(td, 4)
        assert result.success
        assert len(result.segments) == 4
        assert result.schedule.num_segments == 4

    def test_fixed_positions_shared_across_segments(self, chain_spec):
        aais = RydbergAAIS(4, spec=chain_spec)
        td = mis_chain(4, duration=1.0)
        result = QTurboCompiler(aais).compile_time_dependent(td, 3)
        positions = [
            tuple(seg.values[f"x_{i}"] for i in range(4))
            for seg in result.segments
        ]
        assert positions[0] == positions[1] == positions[2]

    def test_piecewise_direct(self, paper_aais):
        pw = PiecewiseHamiltonian.from_pairs(
            [(0.5, ising_chain(3)), (0.5, ising_chain(3, j=0.5))]
        )
        result = QTurboCompiler(paper_aais).compile_piecewise(pw)
        assert result.success
        assert len(result.segments) == 2

    def test_segment_durations_differ_with_targets(self, paper_aais):
        pw = PiecewiseHamiltonian.from_pairs(
            [(1.0, ising_chain(3)), (1.0, 0.25 * ising_chain(3))]
        )
        result = QTurboCompiler(paper_aais).compile_piecewise(pw)
        assert result.success
        assert result.segments[0].duration > result.segments[1].duration


class TestErrorHandling:
    def test_nonpositive_target_time(self, paper_aais):
        with pytest.raises(CompilationError):
            QTurboCompiler(paper_aais).compile(ising_chain(3), 0.0)

    def test_too_many_qubits(self, paper_aais):
        with pytest.raises(CompilationError):
            QTurboCompiler(paper_aais).compile(ising_chain(5), 1.0)

    def test_bad_growth_factor(self, paper_aais):
        with pytest.raises(CompilationError):
            QTurboCompiler(paper_aais, feasibility_growth=1.0)

    def test_unrealizable_sign_reported_as_error(self, paper_aais):
        # A negative ZZ coupling cannot be realized by repulsive vdW:
        # the bounded linear solve clips it to zero and the result
        # carries the full miss as compilation error (best effort).
        result = QTurboCompiler(paper_aais).compile(
            -1.0 * zz(0, 1) + x(2), 1.0
        )
        assert result.success
        assert result.relative_error > 0.4

    def test_trap_too_small_fails(self):
        from repro.devices import RydbergSpec
        from repro.devices.base import TrapGeometry

        # Four atoms at ≈7.46 µm spacing need ≈22 µm; give them 14.
        spec = RydbergSpec(
            name="tiny",
            delta_max=20.0,
            omega_max=2.5,
            geometry=TrapGeometry(extent=14.0, min_spacing=4.0, dimension=1),
            max_time=4.0,
        )
        aais = RydbergAAIS(4, spec=spec)
        result = QTurboCompiler(aais, max_feasibility_iters=5).compile(
            ising_chain(4), 1.0
        )
        if result.success:
            # If the solver squeezed a layout in, it must be flagged.
            assert result.warnings or result.relative_error > 0.05
        else:
            assert result.message
            assert result.schedule is None


class TestTheorem1:
    def test_error_within_bound_rydberg(self, paper_aais):
        result = QTurboCompiler(paper_aais).compile(ising_chain(3), 1.0)
        assert result.error_bound is not None
        assert result.error_l1 <= result.error_bound + 1e-9

    def test_error_within_bound_no_refine(self, paper_aais):
        result = QTurboCompiler(paper_aais, refine=False).compile(
            ising_chain(3), 1.0
        )
        assert result.error_l1 <= result.error_bound + 1e-9

    def test_error_within_bound_heisenberg(self):
        aais = HeisenbergAAIS(4)
        result = QTurboCompiler(aais).compile(ising_chain(4), 1.0)
        assert result.error_l1 <= result.error_bound + 1e-9

    def test_error_within_bound_cycle(self, planar_spec):
        aais = RydbergAAIS(5, spec=planar_spec)
        result = QTurboCompiler(aais).compile(ising_cycle(5), 1.0)
        assert result.error_l1 <= result.error_bound + 1e-9


class TestRefinement:
    def test_refinement_improves_error(self, paper_aais):
        with_refine = QTurboCompiler(paper_aais, refine=True).compile(
            ising_chain(3), 1.0
        )
        without = QTurboCompiler(paper_aais, refine=False).compile(
            ising_chain(3), 1.0
        )
        assert with_refine.relative_error <= without.relative_error + 1e-12
        assert with_refine.refinement_applied

    def test_refinement_updates_detunings(self, paper_aais):
        # Section 6.2: refined detunings move from 2.5 to ≈ 2.55 MHz.
        result = QTurboCompiler(paper_aais, refine=True).compile(
            ising_chain(3), 1.0
        )
        assert result.segments[0].values["delta_0"] > 2.51
