"""The vectorized simulation engine: block evolution, the diagonal and
dense-propagator fast paths, the CSC/propagator caches, and the
vectorized Monte-Carlo executor."""

import json

import numpy as np
import pytest

from repro import QTurboCompiler
from repro.cli import main as cli_main
from repro.errors import SimulationError
from repro.hamiltonian import Hamiltonian, PauliString
from repro.hamiltonian.expression import number_op, x, z, zz
from repro.hamiltonian.time_dependent import PiecewiseHamiltonian
from repro.mitigation import zne_observables
from repro.models import ising_chain
from repro.sim import (
    NoisySimulator,
    clear_simulation_caches,
    configure_simulation_caches,
    evolve,
    evolve_block,
    evolve_piecewise,
    evolve_schedule,
    evolve_schedule_block,
    simulation_cache_stats,
)
from repro.sim.operators import (
    clear_operator_cache,
    hamiltonian_matrix_csc,
    operator_cache_stats,
)
from repro.sim.propagators import is_diagonal_hamiltonian
from repro.sim.sampling import counts_from_samples, sample_bitstrings

ATOL = 1e-10


@pytest.fixture(autouse=True)
def fresh_simulation_caches():
    """Each test starts and ends with empty, default-configured caches."""
    clear_operator_cache()
    clear_simulation_caches()
    configure_simulation_caches(
        propagator_maxsize=256,
        diagonal_maxsize=1024,
        dense_string_maxsize=2048,
        propagator_max_qubits=10,
        propagator_build_max_qubits=7,
    )
    yield
    clear_operator_cache()
    clear_simulation_caches()
    configure_simulation_caches(
        propagator_maxsize=256,
        diagonal_maxsize=1024,
        dense_string_maxsize=2048,
        propagator_max_qubits=10,
        propagator_build_max_qubits=7,
    )


def random_hamiltonian(
    rng: np.random.Generator, num_qubits: int, diagonal: bool = False
) -> Hamiltonian:
    """A random few-term Hamiltonian (Z-only when ``diagonal``)."""
    labels = ("Z",) if diagonal else ("X", "Y", "Z")
    terms = {}
    for _ in range(rng.integers(2, 6)):
        weight = int(rng.integers(1, num_qubits + 1))
        qubits = rng.choice(num_qubits, size=weight, replace=False)
        ops = {int(q): str(rng.choice(labels)) for q in qubits}
        terms[PauliString(ops)] = float(rng.normal())
    return Hamiltonian(terms)


def random_block(
    rng: np.random.Generator, num_qubits: int, k: int
) -> np.ndarray:
    block = rng.standard_normal((2**num_qubits, k)) + 1j * rng.standard_normal(
        (2**num_qubits, k)
    )
    return block / np.linalg.norm(block, axis=0)


class TestBlockEvolve:
    @pytest.mark.parametrize("seed", range(4))
    def test_block_matches_single_evolutions(self, seed):
        """Acceptance: (dim, k) block == k independent single evolutions."""
        rng = np.random.default_rng(seed)
        n, k = 4, 5
        h = random_hamiltonian(rng, n)
        block = random_block(rng, n, k)
        out = evolve(block, h, 0.7, n)
        singles = np.stack(
            [
                evolve(block[:, i], h, 0.7, n, method="krylov")
                for i in range(k)
            ],
            axis=1,
        )
        assert np.allclose(out, singles, atol=ATOL)

    @pytest.mark.parametrize("seed", range(4))
    def test_evolve_block_distinct_hamiltonians(self, seed):
        rng = np.random.default_rng(100 + seed)
        n, k = 3, 6
        hams = [random_hamiltonian(rng, n) for _ in range(k)]
        durations = rng.uniform(0.1, 1.5, k)
        block = random_block(rng, n, k)
        out = evolve_block(block, hams, durations, n)
        for i in range(k):
            single = evolve(
                block[:, i], hams[i], durations[i], n, method="krylov"
            )
            assert np.allclose(out[:, i], single, atol=ATOL)

    def test_identical_columns_grouped(self):
        """Columns sharing (H, t) must not trigger per-column solves."""
        rng = np.random.default_rng(1)
        n, k = 3, 8
        h = random_hamiltonian(rng, n)
        block = random_block(rng, n, k)
        evolve_block(block, [h] * k, 0.5, n)
        fast = simulation_cache_stats()["fast_paths"]
        # All 8 columns went through one dense build, nothing hit Krylov.
        assert fast["dense_build"] == k
        assert fast["krylov"] == 0

    def test_zero_duration_and_zero_hamiltonian(self):
        rng = np.random.default_rng(2)
        block = random_block(rng, 3, 2)
        out = evolve_block(
            block, [Hamiltonian.zero(), zz(0, 1)], [0.4, 0.0], 3
        )
        assert np.allclose(out, block, atol=ATOL)

    def test_shape_validation(self):
        rng = np.random.default_rng(3)
        block = random_block(rng, 3, 2)
        with pytest.raises(SimulationError):
            evolve_block(block, [zz(0, 1)], 0.5, 3)  # 1 H for 2 columns
        with pytest.raises(SimulationError):
            evolve_block(block, [zz(0, 1), x(0)], [0.5], 3)
        with pytest.raises(SimulationError):
            evolve_block(block, [zz(0, 1), x(0)], -0.5, 3)
        with pytest.raises(SimulationError):
            evolve_block(block[:, 0], [zz(0, 1)], 0.5, 3)  # not a block
        with pytest.raises(SimulationError):
            evolve(block, zz(0, 1), 0.5, 3, method="magic")


class TestDiagonalFastPath:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_krylov_on_random_diagonal(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 6))
        h = random_hamiltonian(rng, n, diagonal=True)
        state = random_block(rng, n, 1)[:, 0]
        fast = evolve(state, h, 1.3, n)
        reference = evolve(state, h, 1.3, n, method="krylov")
        assert np.allclose(fast, reference, atol=ATOL)
        assert simulation_cache_stats()["fast_paths"]["diagonal"] >= 1

    def test_detection(self):
        assert is_diagonal_hamiltonian(zz(0, 1) + 0.3 * z(2))
        assert is_diagonal_hamiltonian(number_op(0))  # identity + Z
        assert is_diagonal_hamiltonian(Hamiltonian.zero())
        assert not is_diagonal_hamiltonian(zz(0, 1) + 0.1 * x(0))

    @pytest.mark.parametrize("seed", range(3))
    def test_mixed_piecewise_schedule(self, seed):
        """Alternating diagonal / non-diagonal segments, block state."""
        rng = np.random.default_rng(200 + seed)
        n = 4
        segments = []
        for index in range(5):
            segments.append(
                (
                    float(rng.uniform(0.1, 0.8)),
                    random_hamiltonian(rng, n, diagonal=index % 2 == 0),
                )
            )
        target = PiecewiseHamiltonian.from_pairs(segments)
        block = random_block(rng, n, 3)
        out = evolve_piecewise(block, target, n)
        reference = evolve_piecewise(block, target, n, method="krylov")
        assert np.allclose(out, reference, atol=ATOL)
        assert simulation_cache_stats()["fast_paths"]["diagonal"] > 0


class TestSupportValidation:
    def test_out_of_range_qubit_rejected_on_every_path(self):
        """Fast paths must keep the CSR layer's register-size guard."""
        rng = np.random.default_rng(42)
        state = random_block(rng, 3, 1)[:, 0]
        non_diagonal = x(0) + x(5)
        diagonal = z(0) + z(5)
        for method in ("auto", "dense", "krylov"):
            with pytest.raises(SimulationError):
                evolve(state, non_diagonal, 0.5, 3, method=method)
            with pytest.raises(SimulationError):
                evolve(state, diagonal, 0.5, 3, method=method)


class TestPropagatorCache:
    def test_repeat_evolution_hits_cache(self):
        rng = np.random.default_rng(5)
        n = 3
        h = random_hamiltonian(rng, n)
        state = random_block(rng, n, 1)[:, 0]
        first = evolve(state, h, 0.9, n)
        second = evolve(state, h, 0.9, n)
        stats = simulation_cache_stats()
        assert stats["propagator"]["hits"] >= 1
        assert stats["fast_paths"]["propagator"] >= 1
        assert np.allclose(first, second, atol=ATOL)
        reference = evolve(state, h, 0.9, n, method="krylov")
        assert np.allclose(first, reference, atol=ATOL)

    def test_distinct_durations_are_distinct_entries(self):
        rng = np.random.default_rng(6)
        n = 3
        h = random_hamiltonian(rng, n)
        state = random_block(rng, n, 1)[:, 0]
        evolve(state, h, 0.5, n)
        evolve(state, h, 0.6, n)
        assert simulation_cache_stats()["propagator"]["size"] == 2

    def test_cache_false_does_not_store(self):
        rng = np.random.default_rng(7)
        n = 3
        h = random_hamiltonian(rng, n)
        state = random_block(rng, n, 1)[:, 0]
        evolve(state, h, 0.9, n, cache=False)
        assert simulation_cache_stats()["propagator"]["size"] == 0

    def test_block_reads_cache_warmed_by_single(self):
        rng = np.random.default_rng(8)
        n = 3
        h = random_hamiltonian(rng, n)
        state = random_block(rng, n, 1)[:, 0]
        evolve(state, h, 0.4, n)  # warm
        block = random_block(rng, n, 4)
        out = evolve_block(block, [h] * 4, 0.4, n)
        assert simulation_cache_stats()["fast_paths"]["propagator"] >= 4
        for i in range(4):
            reference = evolve(block[:, i], h, 0.4, n, method="krylov")
            assert np.allclose(out[:, i], reference, atol=ATOL)

    def test_build_threshold_zero_falls_back_to_krylov(self):
        configure_simulation_caches(propagator_build_max_qubits=0)
        rng = np.random.default_rng(9)
        n = 3
        h = random_hamiltonian(rng, n)
        state = random_block(rng, n, 1)[:, 0]
        evolve(state, h, 0.9, n)
        stats = simulation_cache_stats()
        assert stats["fast_paths"]["krylov"] >= 1
        assert stats["fast_paths"]["dense_build"] == 0


class TestEvolveScheduleBlock:
    @pytest.fixture
    def schedule(self, paper_aais):
        return QTurboCompiler(paper_aais).compile(ising_chain(3), 1.0).schedule

    def test_unperturbed_block_matches_single(self, schedule):
        rng = np.random.default_rng(10)
        block = random_block(rng, 3, 4)
        out = evolve_schedule_block(block, schedule)
        for i in range(4):
            single = evolve_schedule(
                block[:, i], schedule, method="krylov"
            )
            assert np.allclose(out[:, i], single, atol=ATOL)

    def test_overrides_match_per_column_loop(self, schedule):
        rng = np.random.default_rng(11)
        k = 5
        block = random_block(rng, 3, k)
        overrides = []
        for _ in range(k):
            shift = float(rng.normal(0.0, 0.3))
            overrides.append(
                [
                    {
                        name: value + shift
                        for name, value in segment.dynamic_values.items()
                        if name.startswith("delta")
                    }
                    for segment in schedule.segments
                ]
            )
        out = evolve_schedule_block(block, schedule, overrides)
        for i in range(k):
            single = evolve_schedule(
                block[:, i],
                schedule,
                value_overrides=overrides[i],
                method="krylov",
            )
            assert np.allclose(out[:, i], single, atol=ATOL)

    def test_override_count_mismatch_rejected(self, schedule):
        rng = np.random.default_rng(12)
        block = random_block(rng, 3, 3)
        with pytest.raises(SimulationError):
            evolve_schedule_block(
                block, schedule, [[{}] * schedule.num_segments] * 2
            )


class TestVectorizedNoisySimulator:
    @pytest.fixture
    def schedule(self, paper_aais):
        return QTurboCompiler(paper_aais).compile(ising_chain(3), 1.0).schedule

    def test_vectorized_matches_legacy_samples(self, schedule):
        vectorized = NoisySimulator(noise_samples=6, seed=4, vectorized=True)
        legacy = NoisySimulator(noise_samples=6, seed=4, vectorized=False)
        a = vectorized.run(schedule, shots=200)
        b = legacy.run(schedule, shots=200)
        assert np.array_equal(a, b)

    def test_zne_identical_across_paths(self, schedule):
        results = []
        for flag in (True, False):
            simulator = NoisySimulator(
                noise_samples=4, seed=2, vectorized=flag
            )
            results.append(
                zne_observables(
                    schedule, simulator, factors=(1.0, 1.5), shots=80
                )
            )
        assert results[0].raw == results[1].raw
        assert results[0].mitigated == results[1].mitigated

    def test_run_many_fresh_rng_per_schedule(self, schedule):
        simulator = NoisySimulator(noise_samples=3, seed=1)
        first, second = simulator.run_many(
            [schedule, schedule], shots=60
        )
        # rng=None re-seeds per schedule, matching repeated run() calls.
        assert np.array_equal(first, second)

    def test_run_many_threads_shared_rng(self, schedule):
        simulator = NoisySimulator(noise_samples=3, seed=1)
        rng = np.random.default_rng(9)
        first, second = simulator.run_many(
            [schedule, schedule], shots=60, rng=rng
        )
        assert not np.array_equal(first, second)


class TestCscCache:
    def test_returns_csc_and_hits_on_repeat(self):
        h = zz(0, 1) + 0.5 * x(0)
        first = hamiltonian_matrix_csc(h, 2)
        assert first.format == "csc"
        second = hamiltonian_matrix_csc(h, 2)
        assert second is first  # shared cached instance, no reconversion
        stats = operator_cache_stats()["hamiltonian_csc"]
        assert stats["hits"] == 1
        assert stats["misses"] == 1

    def test_cache_false_skips_storage(self):
        h = zz(0, 1)
        hamiltonian_matrix_csc(h, 2, cache=False)
        assert operator_cache_stats()["hamiltonian_csc"]["size"] == 0

    def test_matches_csr_conversion(self):
        from repro.sim.operators import hamiltonian_matrix

        h = zz(0, 1) - 0.7 * z(0) + 0.2 * x(1)
        csc = hamiltonian_matrix_csc(h, 2)
        csr = hamiltonian_matrix(h, 2)
        assert np.allclose(csc.toarray(), csr.toarray())


class TestSampling:
    def test_counts_match_naive_histogram(self):
        rng = np.random.default_rng(13)
        samples = rng.integers(0, 2, size=(500, 4)).astype(np.int8)
        counts = counts_from_samples(samples)
        naive = {}
        for row in samples:
            key = "".join(str(b) for b in row)
            naive[key] = naive.get(key, 0) + 1
        assert counts == naive

    def test_inverse_transform_skips_zero_probability(self):
        state = np.zeros(8, dtype=complex)
        state[5] = 1.0  # |101⟩
        samples = sample_bitstrings(
            state, 100, rng=np.random.default_rng(0)
        )
        assert np.all(samples == np.array([1, 0, 1], dtype=np.int8))


class TestCLI:
    def test_cache_stats_json(self, capsys):
        assert cli_main(["cache-stats"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "operator_cache" in payload
        assert "simulation_cache" in payload
        assert "propagator" in payload["simulation_cache"]

    def test_simulate_reports_observables_and_stats(self, capsys):
        code = cli_main(
            [
                "simulate",
                "--model",
                "ising_chain",
                "-n",
                "3",
                "--shots",
                "50",
                "--noise-samples",
                "2",
                "--stats",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload["observables"]) == {"z_avg", "zz_avg"}
        assert payload["vectorized"] is True
        assert "simulation_cache" in payload

    def test_simulate_zne(self, capsys):
        code = cli_main(
            [
                "simulate",
                "--model",
                "ising_chain",
                "-n",
                "3",
                "--shots",
                "40",
                "--noise-samples",
                "2",
                "--zne",
                "1,1.5",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["zne"]["factors"] == [1.0, 1.5]
        assert set(payload["zne"]["mitigated"]) == {"z_avg", "zz_avg"}

    def test_simulate_rejects_bad_zne(self, capsys):
        code = cli_main(
            [
                "simulate",
                "--model",
                "ising_chain",
                "-n",
                "3",
                "--zne",
                "1,banana",
            ]
        )
        assert code == 2
