"""Unit tests for piecewise and time-dependent Hamiltonians."""

import pytest

from repro.errors import HamiltonianError
from repro.hamiltonian import (
    PiecewiseHamiltonian,
    Segment,
    TimeDependentHamiltonian,
    x,
    z,
)


class TestSegment:
    def test_positive_duration_required(self):
        with pytest.raises(HamiltonianError):
            Segment(0.0, x(0))
        with pytest.raises(HamiltonianError):
            Segment(-1.0, x(0))


class TestPiecewise:
    def test_needs_segments(self):
        with pytest.raises(HamiltonianError):
            PiecewiseHamiltonian([])

    def test_constant_factory(self):
        pw = PiecewiseHamiltonian.constant(x(0), 2.0)
        assert pw.num_segments == 1
        assert pw.total_duration() == 2.0

    def test_from_pairs(self):
        pw = PiecewiseHamiltonian.from_pairs([(1.0, x(0)), (0.5, z(0))])
        assert pw.num_segments == 2
        assert pw.total_duration() == 1.5

    def test_boundaries(self):
        pw = PiecewiseHamiltonian.from_pairs([(1.0, x(0)), (0.5, z(0))])
        assert pw.boundaries() == [0.0, 1.0, 1.5]

    def test_hamiltonian_at(self):
        pw = PiecewiseHamiltonian.from_pairs([(1.0, x(0)), (1.0, z(0))])
        assert pw.hamiltonian_at(0.5) == x(0)
        assert pw.hamiltonian_at(1.5) == z(0)
        # boundary resolves to the following segment; end to the last.
        assert pw.hamiltonian_at(1.0) == z(0)
        assert pw.hamiltonian_at(2.0) == z(0)

    def test_hamiltonian_at_out_of_range(self):
        pw = PiecewiseHamiltonian.constant(x(0), 1.0)
        with pytest.raises(HamiltonianError):
            pw.hamiltonian_at(-0.1)
        with pytest.raises(HamiltonianError):
            pw.hamiltonian_at(1.5)

    def test_num_qubits(self):
        pw = PiecewiseHamiltonian.from_pairs([(1.0, x(0)), (1.0, z(4))])
        assert pw.num_qubits() == 5

    def test_len_and_iter(self):
        pw = PiecewiseHamiltonian.from_pairs([(1.0, x(0)), (1.0, z(0))])
        assert len(pw) == 2
        assert [s.duration for s in pw] == [1.0, 1.0]


class TestTimeDependent:
    def test_positive_duration(self):
        with pytest.raises(HamiltonianError):
            TimeDependentHamiltonian(lambda t: x(0), 0.0)

    def test_at(self):
        td = TimeDependentHamiltonian(lambda t: t * x(0), 1.0)
        assert td.at(0.5).coefficient(
            x(0).pauli_strings()[0]
        ) == pytest.approx(0.5)

    def test_at_out_of_window(self):
        td = TimeDependentHamiltonian(lambda t: x(0), 1.0)
        with pytest.raises(HamiltonianError):
            td.at(2.0)

    def test_builder_must_return_hamiltonian(self):
        td = TimeDependentHamiltonian(lambda t: 42, 1.0)  # type: ignore
        with pytest.raises(HamiltonianError):
            td.at(0.5)

    def test_discretize_midpoint_sampling(self):
        td = TimeDependentHamiltonian(lambda t: t * x(0), 1.0)
        pw = td.discretize(2)
        assert pw.num_segments == 2
        string = x(0).pauli_strings()[0]
        assert pw.segments[0].hamiltonian.coefficient(string) == pytest.approx(
            0.25
        )
        assert pw.segments[1].hamiltonian.coefficient(string) == pytest.approx(
            0.75
        )

    def test_discretize_preserves_duration(self):
        td = TimeDependentHamiltonian(lambda t: x(0), 2.0)
        assert td.discretize(4).total_duration() == pytest.approx(2.0)

    def test_discretize_needs_segments(self):
        td = TimeDependentHamiltonian(lambda t: x(0), 1.0)
        with pytest.raises(HamiltonianError):
            td.discretize(0)
