"""Unit tests for device specifications."""

import math

import pytest

from repro.devices import (
    HeisenbergSpec,
    RydbergSpec,
    aquila_spec,
    ibm_like_spec,
    ionq_like_spec,
    paper_example_spec,
)
from repro.devices.base import TrapGeometry
from repro.errors import DeviceConstraintError


class TestTrapGeometry:
    def test_valid(self):
        g = TrapGeometry(extent=75.0, min_spacing=4.0, dimension=2)
        assert g.max_distance == pytest.approx(75.0 * math.sqrt(2))

    def test_1d_max_distance(self):
        assert TrapGeometry(75.0, 4.0, dimension=1).max_distance == 75.0

    def test_rejects_bad_extent(self):
        with pytest.raises(DeviceConstraintError):
            TrapGeometry(extent=0.0, min_spacing=1.0)

    def test_rejects_bad_spacing(self):
        with pytest.raises(DeviceConstraintError):
            TrapGeometry(extent=10.0, min_spacing=20.0)

    def test_rejects_bad_dimension(self):
        with pytest.raises(DeviceConstraintError):
            TrapGeometry(extent=10.0, min_spacing=1.0, dimension=3)


class TestRydbergSpec:
    def test_defaults_are_aquila_like(self):
        spec = RydbergSpec()
        assert spec.c6 == pytest.approx(862690.0)
        assert spec.max_time == 4.0

    def test_rejects_nonpositive_amplitudes(self):
        with pytest.raises(DeviceConstraintError):
            RydbergSpec(delta_max=0.0)
        with pytest.raises(DeviceConstraintError):
            RydbergSpec(omega_max=-1.0)

    def test_rejects_nonpositive_c6(self):
        with pytest.raises(DeviceConstraintError):
            RydbergSpec(c6=0.0)

    def test_phi_covers_circle(self):
        assert RydbergSpec().phi_max == pytest.approx(2 * math.pi)

    def test_paper_example_values(self):
        spec = paper_example_spec()
        assert spec.delta_max == 20.0
        assert spec.omega_max == 2.5
        assert not spec.global_drive

    def test_aquila_is_global(self):
        assert aquila_spec().global_drive

    def test_build_aais(self):
        aais = RydbergSpec().build_aais(3)
        assert aais.num_sites == 3

    def test_check_duration(self):
        spec = RydbergSpec(max_time=4.0)
        spec.check_duration(3.9)
        with pytest.raises(DeviceConstraintError):
            spec.check_duration(4.5)


class TestHeisenbergSpec:
    def test_edges_chain(self):
        assert HeisenbergSpec(topology="chain").edges(4) == [
            (0, 1),
            (1, 2),
            (2, 3),
        ]

    def test_edges_cycle(self):
        edges = HeisenbergSpec(topology="cycle").edges(4)
        assert (3, 0) in edges
        assert len(edges) == 4

    def test_edges_cycle_degenerates_for_two(self):
        assert HeisenbergSpec(topology="cycle").edges(2) == [(0, 1)]

    def test_edges_all(self):
        assert len(HeisenbergSpec(topology="all").edges(5)) == 10

    def test_rejects_unknown_topology(self):
        with pytest.raises(DeviceConstraintError):
            HeisenbergSpec(topology="star")

    def test_rejects_bad_amplitudes(self):
        with pytest.raises(DeviceConstraintError):
            HeisenbergSpec(single_max=0.0)

    def test_presets(self):
        assert ibm_like_spec().topology == "chain"
        assert ionq_like_spec().topology == "all"

    def test_build_aais(self):
        aais = HeisenbergSpec().build_aais(3)
        assert aais.num_sites == 3
