"""Unit tests for the Hamiltonian text parser."""

import pytest

from repro.errors import HamiltonianError
from repro.hamiltonian import PauliString, parse_hamiltonian
from repro.models import ising_chain


class TestParser:
    def test_ising_chain_roundtrip(self):
        parsed = parse_hamiltonian("Z0*Z1 + Z1*Z2 + X0 + X1 + X2")
        assert parsed.isclose(ising_chain(3))

    def test_coefficients(self):
        h = parse_hamiltonian("0.5*Z0*Z1 - 1.25*X0")
        assert h.coefficient(
            PauliString.from_pairs([(0, "Z"), (1, "Z")])
        ) == pytest.approx(0.5)
        assert h.coefficient(PauliString.single("X", 0)) == pytest.approx(
            -1.25
        )

    def test_leading_minus(self):
        h = parse_hamiltonian("-Z0 + X1")
        assert h.coefficient(PauliString.single("Z", 0)) == -1.0

    def test_number_operator_expands(self):
        h = parse_hamiltonian("2*N0*N1")
        assert h.coefficient(PauliString.identity()) == pytest.approx(0.5)
        assert h.coefficient(
            PauliString.from_pairs([(0, "Z"), (1, "Z")])
        ) == pytest.approx(0.5)

    def test_case_insensitive(self):
        h = parse_hamiltonian("z0*z1 + x0")
        assert h.coefficient(
            PauliString.from_pairs([(0, "Z"), (1, "Z")])
        ) == 1.0

    def test_whitespace_tolerant(self):
        h = parse_hamiltonian("  Z0 * Z1   +   X0 ")
        assert h.num_terms == 2

    def test_constant_term(self):
        h = parse_hamiltonian("3.0 + X0")
        assert h.coefficient(PauliString.identity()) == 3.0

    def test_coefficient_times_coefficient(self):
        h = parse_hamiltonian("2*3*X0")
        assert h.coefficient(PauliString.single("X", 0)) == 6.0

    def test_multi_digit_qubits(self):
        h = parse_hamiltonian("X12")
        assert h.coefficient(PauliString.single("X", 12)) == 1.0

    def test_same_qubit_product_collapses(self):
        # Z0*Z0 = I.
        h = parse_hamiltonian("Z0*Z0")
        assert h.coefficient(PauliString.identity()) == 1.0

    def test_anticommuting_product_rejected(self):
        with pytest.raises(HamiltonianError):
            parse_hamiltonian("X0*Z0")  # = -i Y0, not Hermitian-real

    def test_empty_rejected(self):
        with pytest.raises(HamiltonianError):
            parse_hamiltonian("   ")

    def test_garbage_rejected(self):
        with pytest.raises(HamiltonianError):
            parse_hamiltonian("Q0 + X1")

    def test_dangling_operator_rejected(self):
        with pytest.raises(HamiltonianError):
            parse_hamiltonian("X0 +")

    def test_parse_then_compile(self, paper_aais):
        from repro import QTurboCompiler

        target = parse_hamiltonian("Z0*Z1 + Z1*Z2 + X0 + X1 + X2")
        result = QTurboCompiler(paper_aais).compile(target, 1.0)
        assert result.success
        assert result.execution_time == pytest.approx(0.8)
