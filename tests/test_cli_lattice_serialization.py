"""Tests for the CLI, the lattice model, and schedule (de)serialization."""

import json

import pytest

from repro import QTurboCompiler
from repro.cli import main
from repro.errors import HamiltonianError, ScheduleError
from repro.hamiltonian import PauliString
from repro.models import grid_edges, ising_chain, ising_grid
from repro.pulse import PulseSchedule


class TestCLI:
    def test_models_lists_registry(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "ising_chain" in out
        assert "pxp" in out

    def test_compile_summary(self, capsys):
        code = main(
            ["compile", "--model", "ising_chain", "-n", "3", "-t", "1.0"]
        )
        assert code == 0
        assert "execution 0.8" in capsys.readouterr().out

    def test_compile_json_output(self, capsys):
        code = main(
            [
                "compile",
                "--hamiltonian",
                "Z0*Z1 + X0 + X1",
                "-n",
                "2",
                "--output",
                "json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["success"]
        assert payload["schedule"]["num_sites"] == 2

    def test_compile_heisenberg_device(self, capsys):
        code = main(
            [
                "compile",
                "--model",
                "ising_chain",
                "-n",
                "4",
                "--device",
                "heisenberg",
            ]
        )
        assert code == 0
        assert "relative error 0%" in capsys.readouterr().out

    def test_no_refine_flag(self, capsys):
        code = main(
            [
                "compile",
                "--model",
                "ising_chain",
                "-n",
                "3",
                "--no-refine",
            ]
        )
        assert code == 0

    def test_compare_command(self, capsys):
        code = main(
            ["compare", "--model", "ising_chain", "-n", "3", "--seed", "0"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "qturbo" in out and "simuq" in out

    def test_requires_workload(self):
        with pytest.raises(SystemExit):
            main(["compile"])

    def test_bad_hamiltonian_clean_error(self, capsys):
        code = main(["compile", "--hamiltonian", "Q0 + X1", "-n", "2"])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Q0" in err

    def test_unknown_model_clean_error(self, capsys):
        code = main(["compile", "--model", "nonexistent", "-n", "3"])
        assert code == 2
        assert "unknown model" in capsys.readouterr().err


class TestLatticeModel:
    def test_grid_edges_counts(self):
        # rows·(cols−1) + cols·(rows−1) edges.
        assert len(grid_edges(2, 3)) == 2 * 2 + 3 * 1

    def test_grid_edges_validation(self):
        with pytest.raises(HamiltonianError):
            grid_edges(0, 3)

    def test_ising_grid_terms(self):
        h = ising_grid(2, 2, j=1.0, h=0.5)
        assert h.coefficient(
            PauliString.from_pairs([(0, "Z"), (1, "Z")])
        ) == 1.0
        assert h.coefficient(
            PauliString.from_pairs([(0, "Z"), (2, "Z")])
        ) == 1.0
        assert h.coefficient(PauliString.single("X", 3)) == 0.5
        # No diagonal coupling.
        assert h.coefficient(
            PauliString.from_pairs([(0, "Z"), (3, "Z")])
        ) == 0.0

    def test_ising_grid_compiles_on_planar_trap(self, planar_spec):
        from repro.aais import RydbergAAIS

        h = ising_grid(2, 3)
        aais = RydbergAAIS(6, spec=planar_spec)
        result = QTurboCompiler(aais).compile(h, 1.0)
        assert result.success
        # Each unavoidable diagonal tail pollutes three Pauli rows, so a
        # regular grid layout scores ≈39% relative error; the position
        # solver's distorted layout does materially better (~17%).
        assert result.relative_error < 0.25


class TestScheduleSerialization:
    def test_roundtrip(self, paper_aais):
        result = QTurboCompiler(paper_aais).compile(ising_chain(3), 1.0)
        data = result.schedule.to_dict()
        loaded = PulseSchedule.from_dict(paper_aais, data)
        assert loaded.total_duration == pytest.approx(
            result.schedule.total_duration
        )
        assert loaded.fixed_values == result.schedule.fixed_values
        assert (
            loaded.segments[0].dynamic_values
            == result.schedule.segments[0].dynamic_values
        )

    def test_roundtrip_through_json(self, paper_aais):
        from repro.pulse import to_json

        result = QTurboCompiler(paper_aais).compile(ising_chain(3), 1.0)
        data = json.loads(to_json(result.schedule))
        loaded = PulseSchedule.from_dict(paper_aais, data)
        assert loaded.validate() == []

    def test_aais_name_mismatch_rejected(self, paper_aais):
        from repro.aais import HeisenbergAAIS

        result = QTurboCompiler(paper_aais).compile(ising_chain(3), 1.0)
        data = result.schedule.to_dict()
        with pytest.raises(ScheduleError):
            PulseSchedule.from_dict(HeisenbergAAIS(3), data)

    def test_site_count_mismatch_rejected(self, paper_aais):
        from repro.aais import RydbergAAIS
        from repro.devices import paper_example_spec

        result = QTurboCompiler(paper_aais).compile(ising_chain(3), 1.0)
        data = result.schedule.to_dict()
        other = RydbergAAIS(4, spec=paper_example_spec())
        with pytest.raises(ScheduleError):
            PulseSchedule.from_dict(other, data)
