"""Concurrency stress suite for the shared service stores.

The guarantees under test are the ones ``docs/service.md`` promises
multi-tenant deployments:

* **No torn reads** — a reader of the result store or the snapshot
  store observes either nothing or a complete, digest-valid record,
  never a partially written one, even with writers racing it and
  ``corrupt`` faults injected at the write sites.
* **No duplicate compiles** — N clients hammering one service with
  identical requests produce exactly one execution per unique digest
  (in-flight dedup) and at most one per store lifetime (persistent
  store), with every client observing the same bit-identical schedule.
* **Cross-process store sharing** — compilers in separate OS processes
  pointed at one snapshot root never corrupt each other; injected blob
  corruption degrades to a cold recompile, never a wrong schedule.
"""

import concurrent.futures
import json
import multiprocessing
import threading

import pytest

from repro.aais import aais_for_device
from repro.core import QTurboCompiler
from repro.core.pipeline.snapshot import SnapshotStore
from repro.models import ising_chain
from repro.service import (
    ReproService,
    ResultStore,
    ServiceClient,
    ServiceConfig,
    job_digest,
)
from repro.testing import FaultRule, inject_faults


@pytest.fixture()
def service(tmp_path):
    with ReproService(
        ServiceConfig(port=0, data_dir=tmp_path / "svc", linger=0.05)
    ) as instance:
        yield instance


# ----------------------------------------------------------------------
# Service-level: N threads, identical + distinct digests
# ----------------------------------------------------------------------
def test_hammering_identical_requests_compiles_once(service):
    client = ServiceClient(service.url)
    request = {"model": "ising_chain", "qubits": 3, "time": 1.0}
    threads, replies, errors = 8, [], []

    def worker():
        try:
            replies.append(client.compile(request))
        except Exception as error:  # collected, not swallowed
            errors.append(error)

    pool = [threading.Thread(target=worker) for _ in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join(120.0)

    assert not errors
    assert len(replies) == threads
    schedules = [reply["result"]["schedule"] for reply in replies]
    assert all(s == schedules[0] for s in schedules)  # bit-identical
    stats = client.stats()
    # Exactly one execution; everyone else attached or hit the store.
    assert stats["queue"]["executed"] == 1
    assert (
        stats["queue"]["attached"] + stats["service"]["store_hits"]
        == threads - 1
    )


def test_mixed_digests_each_execute_once(service):
    client = ServiceClient(service.url)
    unique, repeats = 4, 3
    requests = [
        {"model": "ising_chain", "qubits": 2 + index, "time": 1.0}
        for index in range(unique)
    ]
    replies = {}
    lock = threading.Lock()

    def worker(request):
        reply = client.compile(request)
        with lock:
            replies.setdefault(
                reply["job"]["job_id"], []
            ).append(reply["result"]["schedule"])

    with concurrent.futures.ThreadPoolExecutor(max_workers=6) as pool:
        futures = [
            pool.submit(worker, request)
            for request in requests
            for _ in range(repeats)
        ]
        for future in futures:
            future.result(timeout=300)

    assert len(replies) == unique
    for schedules in replies.values():
        assert len(schedules) == repeats
        assert all(s == schedules[0] for s in schedules)
    stats = client.stats()
    assert stats["queue"]["executed"] == unique  # one compile per digest
    assert stats["results"]["disk"]["records"] == unique


# ----------------------------------------------------------------------
# ResultStore: mixed readers/writers + injected write corruption
# ----------------------------------------------------------------------
def test_result_store_no_torn_reads_under_faults(tmp_path):
    store = ResultStore(tmp_path / "results")
    digests = [job_digest("compile", {"i": index}) for index in range(4)]
    payloads = {
        digest: {"kind": "compile", "request": {"i": index}, "result": {"i": index}}
        for index, digest in enumerate(digests)
    }
    stop = threading.Event()
    violations = []

    def reader():
        while not stop.is_set():
            for index, digest in enumerate(digests):
                record = store.load(digest)
                if record is None:
                    continue  # miss/corrupt degrades to None — fine
                # A served record must be complete and self-consistent.
                if (
                    record.get("digest") != digest
                    or record.get("result") != {"i": index}
                ):
                    violations.append(record)

    def writer():
        while not stop.is_set():
            for digest in digests:
                store.store(digest, payloads[digest])

    # Every ~3rd write is scribbled right after it lands.
    rule = FaultRule(
        site="service.result", action="corrupt", probability=0.3
    )
    with inject_faults(rule, seed=7):
        threads = [threading.Thread(target=reader) for _ in range(3)] + [
            threading.Thread(target=writer) for _ in range(2)
        ]
        for thread in threads:
            thread.start()
        stop.wait(1.5)
        stop.set()
        for thread in threads:
            thread.join(10.0)

    assert violations == []
    stats = store.stats()
    assert stats["writes"] > 0 and stats["hits"] > 0


# ----------------------------------------------------------------------
# SnapshotStore: cross-process writers + blob corruption
# ----------------------------------------------------------------------
def _compile_shared(payload):
    """Worker: one compile against the shared snapshot root."""
    snapshot_dir, qubits, t_target = payload
    target = ising_chain(qubits)
    aais = aais_for_device("rydberg-1d", qubits)
    compiler = QTurboCompiler(aais, snapshots=snapshot_dir)
    result = compiler.compile(target, t_target)
    assert result.success
    return json.dumps(result.schedule.to_dict(), sort_keys=True)


def test_shared_snapshot_store_across_processes(tmp_path):
    snapshot_dir = str(tmp_path / "snapshots")
    jobs = [(snapshot_dir, 3, 1.0)] * 6  # identical digests, racing
    context = multiprocessing.get_context("spawn")
    with concurrent.futures.ProcessPoolExecutor(
        max_workers=3, mp_context=context
    ) as pool:
        schedules = list(pool.map(_compile_shared, jobs))
    assert all(s == schedules[0] for s in schedules)
    store = SnapshotStore(snapshot_dir)
    stats = store.disk_stats(deep=True)
    # Racing writers of one family converge (determinism), never tear.
    assert stats["families"] == 1 and stats["degraded"] == 0


def test_shared_store_survives_blob_corruption(tmp_path):
    snapshot_dir = str(tmp_path / "snapshots")
    rule = FaultRule(
        site="snapshot.blob", action="corrupt", probability=0.4
    )
    jobs = [(snapshot_dir, 3, 1.0)] * 4
    context = multiprocessing.get_context("spawn")
    with inject_faults(rule, seed=11):
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=2, mp_context=context
        ) as pool:
            schedules = list(pool.map(_compile_shared, jobs))
    # Corruption degrades to cold recompiles — results stay identical.
    assert all(s == schedules[0] for s in schedules)
    # A clean compile afterwards heals whatever the faults scribbled.
    healed = _compile_shared((snapshot_dir, 3, 1.0))
    assert healed == schedules[0]
    store = SnapshotStore(snapshot_dir)
    stats = store.disk_stats(deep=True)
    assert stats["families"] + stats["degraded"] >= 1
    # GC sweeps any still-degraded family; the store ends clean.
    store.gc()
    assert store.disk_stats(deep=True)["degraded"] == 0
