"""Tests for the declarative experiment layer (spec → runner → report)."""

import json

import pytest

from repro.aais import aais_for_device
from repro.errors import ExperimentError
from repro.experiments import (
    ArtifactStore,
    ExperimentRunner,
    ExperimentSpec,
    expand_sweep,
    generate_report,
    load_spec,
    run_experiment,
)
from repro.cli import main as cli_main

BASE_SPEC = {
    "name": "unit",
    "model": {"name": "ising_chain", "qubits": 2},
    "device": "rydberg-1d",
    "time": 1.0,
}


def _spec(**extra):
    data = json.loads(json.dumps(BASE_SPEC))
    data.update(extra)
    return ExperimentSpec.from_dict(data)


def _sim_section(shots=60, noise_samples=3, seed=5):
    return {"shots": shots, "noise_samples": noise_samples, "seed": seed}


# ----------------------------------------------------------------------
# Spec loading / validation
# ----------------------------------------------------------------------


class TestSpecValidation:
    def test_minimal_spec_defaults(self):
        spec = _spec()
        assert spec.name == "unit"
        assert spec.device == "rydberg-1d"
        assert spec.segments == 1
        assert spec.simulation is None
        assert spec.num_jobs == 1

    def test_simulation_backend_validated_and_round_trips(self):
        spec = _spec(simulation=dict(_sim_section(), backend="matrix_free"))
        assert spec.simulation.backend == "matrix_free"
        assert spec.simulation.to_dict()["backend"] == "matrix_free"
        with pytest.raises(ExperimentError):
            _spec(simulation=dict(_sim_section(), backend="gpu"))

    def test_default_backend_keeps_spec_hash_stable(self):
        """Omitting the default backend must not perturb existing runs."""
        plain = _spec(simulation=_sim_section())
        explicit = _spec(simulation=dict(_sim_section(), backend="auto"))
        assert plain.spec_hash == explicit.spec_hash
        assert "backend" not in plain.simulation.to_dict()

    def test_backend_is_sweepable(self):
        spec = _spec(
            simulation=_sim_section(),
            sweep={"simulation.backend": ["sparse", "matrix_free"]},
        )
        jobs = expand_sweep(spec)
        assert [job.spec.simulation.backend for job in jobs] == [
            "sparse",
            "matrix_free",
        ]

    def test_execution_chunksize_validated(self):
        spec = _spec(execution={"executor": "process", "chunksize": 4})
        assert spec.execution.chunksize == 4
        assert spec.execution.to_dict()["chunksize"] == 4
        with pytest.raises(ExperimentError):
            _spec(execution={"executor": "process", "chunksize": 0})

    def test_round_trip_via_json(self, tmp_path):
        spec = _spec(
            simulation=_sim_section(),
            zne={"factors": [1.0, 1.5]},
            sweep={"model.qubits": [2, 3]},
            compiler={"refine": False},
            description="round trip",
        )
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec.to_dict()))
        loaded = load_spec(path)
        assert loaded == spec
        assert loaded.spec_hash == spec.spec_hash

    def test_round_trip_via_yaml(self, tmp_path):
        yaml = pytest.importorskip("yaml")
        spec = _spec(simulation=_sim_section(), sweep={"time": [0.5, 1.0]})
        path = tmp_path / "spec.yaml"
        path.write_text(yaml.safe_dump(spec.to_dict()))
        loaded = load_spec(path)
        assert loaded == spec
        assert loaded.spec_hash == spec.spec_hash

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(ExperimentError, match="unknown key"):
            _spec(bogus=1)

    def test_unknown_model_rejected(self):
        with pytest.raises(ExperimentError, match="unknown model"):
            ExperimentSpec.from_dict(
                {"name": "x", "model": {"name": "nope", "qubits": 2}}
            )

    def test_model_requires_exactly_one_source(self):
        with pytest.raises(ExperimentError, match="exactly one"):
            ExperimentSpec.from_dict(
                {
                    "name": "x",
                    "model": {
                        "name": "ising_chain",
                        "hamiltonian": "Z0*Z1",
                    },
                }
            )

    def test_zne_requires_simulation(self):
        with pytest.raises(ExperimentError, match="requires a 'simulation'"):
            _spec(zne={"factors": [1.0, 1.5]})

    def test_segments_require_time_dependent_model(self):
        with pytest.raises(ExperimentError, match="time-dependent"):
            _spec(segments=4)

    def test_bad_sweep_path_rejected(self):
        with pytest.raises(ExperimentError, match="not sweepable"):
            _spec(sweep={"model.name": ["ising_chain", "kitaev"]})

    def test_bad_sweep_value_fails_at_load_time(self):
        with pytest.raises(ExperimentError):
            _spec(sweep={"model.qubits": [2, -1]})

    def test_zne_factor_validation(self):
        with pytest.raises(ExperimentError, match=">= 1"):
            _spec(simulation=_sim_section(), zne={"factors": [0.5, 1.0]})
        with pytest.raises(ExperimentError, match="distinct"):
            _spec(simulation=_sim_section(), zne={"factors": [1.0, 1.0]})
        with pytest.raises(ExperimentError, match="start with 1.0"):
            _spec(simulation=_sim_section(), zne={"factors": [1.25, 1.5]})

    def test_non_numeric_fields_raise_experiment_error(self):
        with pytest.raises(ExperimentError, match="time must be a number"):
            _spec(time="fast")
        with pytest.raises(ExperimentError, match="simulation.seed"):
            _spec(simulation={"seed": "xyz"})
        with pytest.raises(ExperimentError, match="digital.epsilon"):
            _spec(digital={"epsilon": "tiny"})

    def test_missing_file_is_experiment_error(self, tmp_path):
        with pytest.raises(ExperimentError, match="not found"):
            load_spec(tmp_path / "nope.yaml")

    def test_spec_hash_changes_with_content(self):
        assert _spec().spec_hash != _spec(time=2.0).spec_hash


class TestCompilerPassesSection:
    def test_passes_section_canonicalized_and_hashable(self):
        spec = _spec(
            compiler={"passes": {"enable": ["term_fusion"]}}
        )
        assert dict(spec.compiler)["passes"] == (
            ("enable", ("term_fusion",)),
        )
        hash(spec.compiler)  # must stay usable as a batch-job cache key

    def test_passes_round_trips_through_to_dict(self):
        spec = _spec(
            compiler={
                "passes": {
                    "enable": ["term_fusion", "schedule_compaction"],
                    "disable": ["refinement"],
                }
            }
        )
        data = spec.to_dict()
        assert data["compiler"]["passes"] == {
            "enable": ["term_fusion", "schedule_compaction"],
            "disable": ["refinement"],
        }
        again = ExperimentSpec.from_dict(data)
        assert again.spec_hash == spec.spec_hash

    def test_default_passes_config_is_dropped(self):
        spec = _spec(compiler={"passes": {}, "refine": True})
        assert "passes" not in dict(spec.compiler)
        assert spec.spec_hash == _spec(compiler={"refine": True}).spec_hash

    def test_unknown_pass_fails_at_load_time(self):
        with pytest.raises(ExperimentError, match="unknown compiler pass"):
            _spec(compiler={"passes": {"enable": ["bogus"]}})

    def test_bad_order_fails_at_load_time(self):
        with pytest.raises(ExperimentError, match="must run before"):
            _spec(
                compiler={
                    "passes": {
                        "order": [
                            "emit_schedule",
                            "build_linear_system",
                            "partition",
                            "time_optimization",
                            "fixed_solve",
                            "refinement",
                        ]
                    }
                }
            )

    def test_passes_flow_into_job_records(self, tmp_path):
        spec = _spec(
            compiler={"passes": {"enable": ["term_fusion"]}},
            device="heisenberg",
        )
        result = run_experiment(spec, tmp_path / "run")
        assert result.all_ok
        record = result.records[0]
        names = [e["name"] for e in record["compile"]["passes"]]
        assert names[0] == "term_fusion"
        assert "stage_timings" in record["compile"]
        report = generate_report(tmp_path / "run")
        assert "mean_pass_seconds" in report.payload["aggregates"]


# ----------------------------------------------------------------------
# Sweep expansion
# ----------------------------------------------------------------------


class TestSweepExpansion:
    def test_grid_is_cartesian_product_in_sorted_path_order(self):
        spec = _spec(
            simulation=_sim_section(seed=10),
            sweep={"time": [0.5, 1.0], "model.qubits": [2, 3, 4]},
        )
        jobs = expand_sweep(spec)
        assert len(jobs) == 6 == spec.num_jobs
        # 'model.qubits' sorts before 'time': qubits is the outer axis.
        combos = [dict(job.overrides) for job in jobs]
        assert combos[0] == {"model.qubits": 2, "time": 0.5}
        assert combos[1] == {"model.qubits": 2, "time": 1.0}
        assert combos[2] == {"model.qubits": 3, "time": 0.5}

    def test_expansion_is_deterministic(self):
        spec = _spec(
            simulation=_sim_section(seed=3),
            sweep={"model.qubits": [2, 3], "simulation.shots": [10, 20]},
        )
        first = expand_sweep(spec)
        second = expand_sweep(spec)
        assert [j.job_id for j in first] == [j.job_id for j in second]
        assert [j.seed for j in first] == [j.seed for j in second]
        assert [j.seed for j in first] == [3, 4, 5, 6]

    def test_swept_seed_values_are_used_verbatim(self):
        spec = _spec(
            simulation=_sim_section(seed=0),
            sweep={"simulation.seed": [100, 200]},
        )
        jobs = expand_sweep(spec)
        assert [j.seed for j in jobs] == [100, 200]
        assert [j.spec.simulation.seed for j in jobs] == [100, 200]

    def test_job_ids_embed_distinct_digests(self):
        jobs = expand_sweep(_spec(sweep={"model.qubits": [2, 3]}))
        digests = {job.job_id.split("-", 1)[1] for job in jobs}
        assert len(digests) == 2

    def test_resolved_spec_has_no_sweep(self):
        jobs = expand_sweep(_spec(sweep={"model.qubits": [2, 3]}))
        assert all(job.spec.sweep == () for job in jobs)
        assert [job.spec.model.qubits for job in jobs] == [2, 3]

    def test_list_valued_axis(self):
        spec = _spec(
            simulation=_sim_section(),
            zne={"factors": [1.0, 1.5]},
            sweep={"zne.factors": [[1.0, 1.5], [1.0, 1.5, 2.0]]},
        )
        jobs = expand_sweep(spec)
        assert [job.spec.zne.factors for job in jobs] == [
            (1.0, 1.5),
            (1.0, 1.5, 2.0),
        ]


# ----------------------------------------------------------------------
# Runner + artifact store
# ----------------------------------------------------------------------


class TestRunnerResume:
    def test_run_executes_and_reports(self, tmp_path):
        spec = _spec(
            simulation=_sim_section(),
            zne={"factors": [1.0, 1.5]},
            verify=True,
            sweep={"model.qubits": [2, 3]},
        )
        result = run_experiment(spec, tmp_path / "run")
        assert result.all_ok
        assert result.executed == 2 and result.skipped == 0
        record = result.records[0]
        assert record["status"] == "ok"
        assert record["compile"]["success"]
        assert 0.9 < record["fidelity"] <= 1.0 + 1e-9
        assert set(record["observables"]) == {"z_avg", "zz_avg"}
        assert record["zne"]["factors"] == [1.0, 1.5]
        report = generate_report(tmp_path / "run")
        assert report.payload["num_ok"] == 2
        assert (tmp_path / "run" / "report.json").is_file()
        assert "mean_relative_error" in report.payload["aggregates"]

    def test_resume_skips_completed_jobs(self, tmp_path):
        spec = _spec(
            simulation=_sim_section(), sweep={"model.qubits": [2, 3]}
        )
        first = run_experiment(spec, tmp_path / "run")
        assert first.executed == 2
        second = run_experiment(spec, tmp_path / "run")
        assert second.executed == 0 and second.skipped == 2
        # Resumed records are byte-identical to the first run's.
        assert [r["job_id"] for r in second.records] == [
            r["job_id"] for r in first.records
        ]

    def test_resume_retries_errored_jobs(self, tmp_path):
        spec = _spec(simulation=_sim_section())
        result = run_experiment(spec, tmp_path / "run")
        store = ArtifactStore(tmp_path / "run")
        record = store.read_job(result.records[0]["job_id"])
        record["status"] = "error"
        store.write_job(record)
        rerun = run_experiment(spec, tmp_path / "run")
        assert rerun.executed == 1
        assert rerun.records[0]["status"] == "ok"

    def test_mismatched_spec_rejected_without_force(self, tmp_path):
        run_experiment(_spec(), tmp_path / "run")
        other = _spec(time=2.0)
        with pytest.raises(ExperimentError, match="different experiment"):
            run_experiment(other, tmp_path / "run")
        forced = run_experiment(other, tmp_path / "run", force=True)
        assert forced.executed == 1

    def test_infeasible_job_is_isolated(self, tmp_path):
        # A qubits sweep where one point exceeds the trap extent:
        # that point fails, the other still completes.
        spec = ExperimentSpec.from_dict(
            {
                "name": "isolated",
                "model": {"name": "ising_chain", "qubits": 2},
                "device": "rydberg-1d",
                "device_options": {"extent": 12.0},
                "time": 1.0,
                "sweep": {"model.qubits": [2, 9]},
            }
        )
        result = run_experiment(spec, tmp_path / "run")
        statuses = [r["status"] for r in result.records]
        assert statuses[0] == "ok"
        assert statuses[1] in ("compile_failed", "error")
        assert not result.all_ok

    def test_time_dependent_model_spec(self, tmp_path):
        spec = ExperimentSpec.from_dict(
            {
                "name": "mis",
                "model": {"name": "mis_chain", "qubits": 3},
                "device": "rydberg-1d",
                "device_options": {"extent": 120.0},
                "time": 1.0,
                "segments": 2,
                "verify": True,
            }
        )
        result = run_experiment(spec, tmp_path / "run")
        assert result.all_ok
        assert result.records[0]["compile"]["num_segments"] == 2


class TestDeviceOptions:
    def test_aais_for_device_applies_overrides(self):
        aais = aais_for_device(
            "rydberg-1d", 3, {"extent": 200.0, "delta_max": 10.0}
        )
        assert aais.spec.geometry.extent == 200.0
        assert aais.spec.delta_max == 10.0

    def test_unknown_option_rejected(self):
        from repro.errors import AAISError

        with pytest.raises(AAISError, match="device_options"):
            aais_for_device("heisenberg", 3, {"extent": 10.0})


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


class TestCLI:
    def _write_spec(self, tmp_path, **extra):
        data = json.loads(json.dumps(BASE_SPEC))
        data["simulation"] = _sim_section(shots=40, noise_samples=2)
        data["zne"] = {"factors": [1.0, 1.5]}
        data.update(extra)
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(data))
        return path

    def test_run_smoke_two_qubits(self, tmp_path, capsys):
        path = self._write_spec(tmp_path)
        out_dir = tmp_path / "out"
        assert cli_main(["run", str(path), "--out", str(out_dir)]) == 0
        captured = capsys.readouterr().out
        assert "1/1 jobs ok" in captured
        assert (out_dir / "manifest.json").is_file()
        assert (out_dir / "report.json").is_file()

    def test_run_resumes_on_second_invocation(self, tmp_path, capsys):
        path = self._write_spec(tmp_path)
        out_dir = tmp_path / "out"
        assert cli_main(["run", str(path), "--out", str(out_dir)]) == 0
        capsys.readouterr()
        assert cli_main(["run", str(path), "--out", str(out_dir)]) == 0
        assert "(0 executed, 1 resumed)" in capsys.readouterr().out

    def test_dry_run_prints_plan_without_artifacts(self, tmp_path, capsys):
        path = self._write_spec(tmp_path, sweep={"model.qubits": [2, 3]})
        assert cli_main(["run", str(path), "--dry-run"]) == 0
        captured = capsys.readouterr().out
        assert "2 job(s)" in captured
        assert "model.qubits=2" in captured
        assert not (tmp_path / "runs").exists()

    def test_report_command(self, tmp_path, capsys):
        path = self._write_spec(tmp_path)
        out_dir = tmp_path / "out"
        cli_main(["run", str(path), "--out", str(out_dir)])
        capsys.readouterr()
        assert cli_main(["report", str(out_dir), "--output", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["num_jobs"] == payload["num_ok"] == 1

    def test_run_invalid_spec_exits_2(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"name": "bad"}))
        assert cli_main(["run", str(path)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_example_specs_validate(self):
        pytest.importorskip("yaml")
        from pathlib import Path

        spec_dir = Path(__file__).resolve().parent.parent / (
            "examples/experiments"
        )
        specs = sorted(spec_dir.glob("*.yaml"))
        assert len(specs) >= 4
        for path in specs:
            spec = load_spec(path)
            assert spec.num_jobs >= 1
            assert len(ExperimentRunner().plan(spec)) == spec.num_jobs
