"""Unit tests for the local mixed-system solver strategies (Section 5)."""

import math

import pytest

from repro.aais import RydbergAAIS
from repro.core.local_solvers import (
    GenericStrategy,
    LinearStrategy,
    RabiStrategy,
    VanDerWaalsStrategy,
    _min_time_for_range,
    select_strategy,
)
from repro.core.partition import partition_channels
from repro.devices import aquila_spec


@pytest.fixture
def paper_components(paper_aais):
    return partition_channels(paper_aais.channels)


def component_named(components, prefix):
    for component in components:
        if component.channels[0].name.startswith(prefix):
            return component
    raise AssertionError(f"no component starting with {prefix}")


class TestMinTimeForRange:
    def test_positive_target(self):
        assert _min_time_for_range(-1.0, 2.0, 1.0) == 0.5

    def test_negative_target(self):
        assert _min_time_for_range(-2.0, 1.0, -1.0) == 0.5

    def test_zero_target_no_constraint(self):
        assert _min_time_for_range(-1.0, 1.0, 0.0) == 0.0

    def test_unreachable_sign(self):
        assert _min_time_for_range(0.0, 1.0, -1.0) == math.inf
        assert _min_time_for_range(-1.0, 0.0, 1.0) == math.inf


class TestStrategySelection:
    def test_rydberg_assignments(self, paper_components):
        kinds = {
            type(select_strategy(c)).__name__ for c in paper_components
        }
        assert kinds == {
            "LinearStrategy",
            "RabiStrategy",
            "VanDerWaalsStrategy",
        }

    def test_detuning_gets_linear(self, paper_components):
        component = component_named(paper_components, "detuning")
        assert isinstance(select_strategy(component), LinearStrategy)

    def test_rabi_gets_rabi(self, paper_components):
        component = component_named(paper_components, "rabi")
        assert isinstance(select_strategy(component), RabiStrategy)

    def test_vdw_gets_vdw(self, paper_components):
        component = component_named(paper_components, "vdw")
        assert isinstance(select_strategy(component), VanDerWaalsStrategy)


class TestLinearStrategy:
    def test_paper_case1_min_time(self, paper_components):
        # Δ1/2 · T = 1 with Δ_max = 20  →  T = 0.1 µs (Case 1).
        component = component_named(paper_components, "detuning_0")
        strategy = LinearStrategy(component)
        assert strategy.minimum_time({"detuning_0": 1.0}) == pytest.approx(
            0.1
        )

    def test_solve_exact(self, paper_components):
        component = component_named(paper_components, "detuning_0")
        strategy = LinearStrategy(component)
        solution = strategy.solve({"detuning_0": 1.0}, t_sim=0.8)
        assert solution.values["delta_0"] == pytest.approx(2.5)
        assert solution.achieved_expressions["detuning_0"] == pytest.approx(
            1.25
        )

    def test_solve_clips_to_bounds(self, paper_components):
        component = component_named(paper_components, "detuning_0")
        strategy = LinearStrategy(component)
        solution = strategy.solve({"detuning_0": 1000.0}, t_sim=0.1)
        assert solution.values["delta_0"] == pytest.approx(20.0)

    def test_negative_target(self, paper_components):
        component = component_named(paper_components, "detuning_0")
        strategy = LinearStrategy(component)
        solution = strategy.solve({"detuning_0": -1.0}, t_sim=0.8)
        assert solution.values["delta_0"] == pytest.approx(-2.5)

    def test_alpha_residual_zero_when_exact(self, paper_components):
        component = component_named(paper_components, "detuning_0")
        strategy = LinearStrategy(component)
        alphas = {"detuning_0": 1.0}
        solution = strategy.solve(alphas, t_sim=0.8)
        assert solution.alpha_residual_l1(alphas, 0.8) == pytest.approx(
            0.0, abs=1e-12
        )

    def test_requires_positive_time(self, paper_components):
        from repro.errors import CompilationError

        component = component_named(paper_components, "detuning_0")
        with pytest.raises(CompilationError):
            LinearStrategy(component).solve({"detuning_0": 1.0}, t_sim=0.0)


class TestRabiStrategy:
    def test_paper_case2_min_time(self, paper_components):
        # Ω·T = 2 with Ω_max = 2.5  →  T = 0.8 µs (Case 2, Equation (6)).
        component = component_named(paper_components, "rabi_cos_0")
        strategy = RabiStrategy(component)
        t = strategy.minimum_time({"rabi_cos_0": 1.0, "rabi_sin_0": 0.0})
        assert t == pytest.approx(0.8)

    def test_solve_matches_paper(self, paper_components):
        component = component_named(paper_components, "rabi_cos_0")
        strategy = RabiStrategy(component)
        solution = strategy.solve(
            {"rabi_cos_0": 1.0, "rabi_sin_0": 0.0}, t_sim=0.8
        )
        assert solution.values["omega_0"] == pytest.approx(2.5)
        assert solution.values["phi_0"] == pytest.approx(0.0)

    def test_solve_with_y_component(self, paper_components):
        component = component_named(paper_components, "rabi_cos_0")
        strategy = RabiStrategy(component)
        solution = strategy.solve(
            {"rabi_cos_0": 0.0, "rabi_sin_0": 1.0}, t_sim=0.8
        )
        # −(Ω/2) sin φ = 1/0.8 needs sin φ = −1: φ = 3π/2.
        assert solution.values["phi_0"] == pytest.approx(3 * math.pi / 2)
        achieved = solution.achieved_expressions
        assert achieved["rabi_sin_0"] == pytest.approx(1.25)
        assert achieved["rabi_cos_0"] == pytest.approx(0.0, abs=1e-12)

    def test_zero_targets_turn_drive_off(self, paper_components):
        component = component_named(paper_components, "rabi_cos_0")
        strategy = RabiStrategy(component)
        solution = strategy.solve(
            {"rabi_cos_0": 0.0, "rabi_sin_0": 0.0}, t_sim=0.8
        )
        assert solution.values["omega_0"] == 0.0

    def test_global_drive_fits_mean(self):
        aais = RydbergAAIS(3, spec=aquila_spec(omega_max=2.5))
        components = partition_channels(aais.channels)
        rabi = component_named(components, "rabi")
        strategy = RabiStrategy(rabi)
        alphas = {}
        for i in range(3):
            alphas[f"rabi_cos_{i}"] = 1.0
            alphas[f"rabi_sin_{i}"] = 0.0
        solution = strategy.solve(alphas, t_sim=0.8)
        assert solution.values["omega"] == pytest.approx(2.5)
        assert solution.alpha_residual_l1(alphas, 0.8) == pytest.approx(
            0.0, abs=1e-9
        )


class TestVanDerWaalsStrategy:
    def test_min_time_from_spacing(self, paper_components, paper_aais):
        component = component_named(paper_components, "vdw")
        strategy = VanDerWaalsStrategy(component)
        alphas = {"vdw_0_1": 1.0, "vdw_1_2": 1.0, "vdw_0_2": 0.0}
        expression_max = (paper_aais.spec.c6 / 4.0) / 4.0**6
        assert strategy.minimum_time(alphas) == pytest.approx(
            1.0 / expression_max
        )

    def test_negative_target_infeasible(self, paper_components):
        component = component_named(paper_components, "vdw")
        strategy = VanDerWaalsStrategy(component)
        assert math.isinf(
            strategy.minimum_time({"vdw_0_1": -1.0, "vdw_1_2": 0, "vdw_0_2": 0})
        )

    def test_solve_paper_positions(self, paper_components):
        component = component_named(paper_components, "vdw")
        strategy = VanDerWaalsStrategy(component)
        solution = strategy.solve(
            {"vdw_0_1": 1.0, "vdw_1_2": 1.0, "vdw_0_2": 0.0}, t_sim=0.8
        )
        xs = sorted(
            solution.values[f"x_{i}"] for i in range(3)
        )
        gaps = [xs[1] - xs[0], xs[2] - xs[1]]
        assert gaps[0] == pytest.approx(7.46, abs=0.05)
        assert gaps[1] == pytest.approx(7.46, abs=0.05)
        assert solution.feasible

    def test_all_zero_targets_spread_atoms(self, paper_components):
        component = component_named(paper_components, "vdw")
        strategy = VanDerWaalsStrategy(component)
        solution = strategy.solve(
            {"vdw_0_1": 0.0, "vdw_1_2": 0.0, "vdw_0_2": 0.0}, t_sim=1.0
        )
        for expr in solution.achieved_expressions.values():
            assert expr < 1e-4

    def test_infeasible_spacing_reported(self, paper_aais, paper_components):
        component = component_named(paper_components, "vdw")
        strategy = VanDerWaalsStrategy(component)
        # Demand an interaction stronger than the min-spacing cap.
        e_max = (paper_aais.spec.c6 / 4.0) / 4.0**6
        targets = {
            "vdw_0_1": 5 * e_max,
            "vdw_1_2": 5 * e_max,
            "vdw_0_2": 0.0,
        }
        solution = strategy.solve_expressions(targets)
        assert not solution.feasible

    def test_2d_solve(self, planar_spec):
        aais = RydbergAAIS(4, spec=planar_spec)
        components = partition_channels(aais.channels)
        component = component_named(components, "vdw")
        strategy = VanDerWaalsStrategy(component)
        # A 4-cycle: adjacent pairs coupled, diagonals off.
        alphas = {
            "vdw_0_1": 1.0,
            "vdw_1_2": 1.0,
            "vdw_2_3": 1.0,
            "vdw_0_3": 1.0,
            "vdw_0_2": 0.0,
            "vdw_1_3": 0.0,
        }
        solution = strategy.solve(alphas, t_sim=0.8)
        residual = solution.alpha_residual_l1(alphas, 0.8)
        # A square layout leaves unavoidable diagonal tails of
        # 2 × (1.25 / 2³) × 0.8 = 0.25; anything close to that is optimal.
        assert residual < 0.35
        assert solution.feasible


class TestGenericStrategy:
    def test_case3_no_time_critical_variable(self, paper_components):
        # cos(φ)·T = 1 has minimum T = 1 (paper Case 3); emulate with a
        # generic solve over the rabi component at fixed small Ω bound.
        component = component_named(paper_components, "rabi_cos_1")
        strategy = GenericStrategy(component)
        t = strategy.minimum_time({"rabi_cos_1": 1.0, "rabi_sin_1": 0.0})
        assert t == pytest.approx(0.8)  # bound from Ω_max · scale

    def test_generic_solve_matches_analytic(self, paper_components):
        component = component_named(paper_components, "rabi_cos_1")
        generic = GenericStrategy(component)
        analytic = RabiStrategy(component)
        alphas = {"rabi_cos_1": 0.7, "rabi_sin_1": 0.2}
        g = generic.solve(alphas, t_sim=1.0)
        a = analytic.solve(alphas, t_sim=1.0)
        assert g.alpha_residual_l1(alphas, 1.0) == pytest.approx(
            a.alpha_residual_l1(alphas, 1.0), abs=1e-6
        )

    def test_matches_everything(self, paper_components):
        assert all(
            GenericStrategy.matches(c) for c in paper_components
        )
