"""Unit suite for the service layer's storage and queue primitives.

Covers the content-addressed :class:`ResultStore` (digest keys as
integrity checks, atomic writes, GC), the digest-deduplicating
:class:`JobQueue`, route dispatch error mapping, and the
``cache-stats`` degraded-family regression: a snapshot family whose
blobs were GC'd or scribbled must report as ``degraded``, never as a
usable family.
"""

import json
import threading

import pytest

from repro.aais import aais_for_device
from repro.cli import main as cli_main
from repro.core import QTurboCompiler
from repro.core.pipeline.snapshot import SnapshotStore
from repro.models import ising_chain
from repro.service import Job, JobQueue, ResultStore, job_digest
from repro.service.routes import ServiceError, dispatch


# ----------------------------------------------------------------------
# job_digest
# ----------------------------------------------------------------------
def test_job_digest_is_canonical():
    a = job_digest("compile", {"model": "ising_chain", "qubits": 3})
    b = job_digest("compile", {"qubits": 3, "model": "ising_chain"})
    assert a == b  # key order must not matter
    assert len(a) == 32 and int(a, 16) >= 0


def test_job_digest_separates_kind_and_content():
    request = {"model": "ising_chain", "qubits": 3}
    assert job_digest("compile", request) != job_digest("simulate", request)
    assert job_digest("compile", request) != job_digest(
        "compile", {**request, "qubits": 4}
    )


# ----------------------------------------------------------------------
# ResultStore
# ----------------------------------------------------------------------
def test_result_store_round_trip(tmp_path):
    store = ResultStore(tmp_path / "results")
    digest = job_digest("compile", {"model": "x"})
    store.store(digest, {"kind": "compile", "result": {"ok": True}})
    record = store.load(digest)
    assert record["digest"] == digest
    assert record["result"] == {"ok": True}
    assert store.stats()["hits"] == 1


def test_result_store_miss_and_corrupt(tmp_path):
    store = ResultStore(tmp_path / "results")
    digest = job_digest("compile", {"model": "x"})
    assert store.load(digest) is None  # miss

    store.store(digest, {"kind": "compile", "result": {}})
    path = store.path_for(digest)

    # Torn write: truncated JSON reads as a miss, not an exception.
    path.write_text(path.read_text()[: 10])
    assert store.load(digest) is None

    # Wrong content under the right name: embedded digest mismatch.
    path.write_text(json.dumps({"digest": "0" * 32, "result": {}}))
    assert store.load(digest) is None
    assert store.stats()["corrupt"] == 2


def test_result_store_gc_oldest_first(tmp_path):
    store = ResultStore(tmp_path / "results")
    digests = []
    for index in range(4):
        digest = job_digest("compile", {"i": index})
        store.store(digest, {"kind": "compile", "result": {"i": index}})
        # mtime is the GC ordering key; space the records out.
        t = 1_000_000 + index
        import os

        os.utime(store.path_for(digest), (t, t))
        digests.append(digest)
    outcome = store.gc(max_results=2)
    assert outcome["evicted"] == 2 and outcome["kept"] == 2
    assert store.load(digests[0]) is None  # oldest evicted
    assert store.load(digests[3]) is not None  # newest kept
    assert store.disk_stats()["records"] == 2


# ----------------------------------------------------------------------
# JobQueue
# ----------------------------------------------------------------------
def _make_queue(execute, **kwargs):
    queue = JobQueue(execute, **kwargs)
    return queue


def test_queue_executes_and_finishes():
    def execute(jobs):
        for job in jobs:
            job.finish({"result": {"echo": job.request}})

    queue = _make_queue(execute)
    try:
        job = queue.submit(Job("compile", "d1", {"x": 1}))
        assert job.wait(5.0)
        assert job.status == "done"
        assert job.result["result"]["echo"] == {"x": 1}
        assert queue.get("d1") is job  # addressable after completion
    finally:
        queue.close()


def test_queue_dedups_by_digest():
    release = threading.Event()

    def execute(jobs):
        release.wait(5.0)
        for job in jobs:
            job.finish({"result": {}})

    queue = _make_queue(execute)
    try:
        first = queue.submit(Job("compile", "dup", {"x": 1}))
        second = queue.submit(Job("compile", "dup", {"x": 1}))
        assert second is first  # attached, not re-enqueued
        release.set()
        assert first.wait(5.0)
        stats = queue.stats()
        assert stats["attached"] == 1
        assert stats["executed"] == 1  # compiled exactly once
    finally:
        queue.close()


def test_queue_batches_within_linger():
    batches = []
    gate = threading.Event()

    def execute(jobs):
        gate.wait(5.0)  # hold the first drain until all are queued
        batches.append(len(jobs))
        for job in jobs:
            job.finish({"result": {}})

    queue = _make_queue(execute, linger=0.2)
    try:
        jobs = [queue.submit(Job("compile", f"d{i}", {"i": i})) for i in range(5)]
        gate.set()
        for job in jobs:
            assert job.wait(5.0)
        assert sum(batches) == 5
        assert queue.stats()["max_batch"] >= 2  # coalescing happened
    finally:
        queue.close()


def test_queue_failure_boundary():
    def execute(jobs):
        raise RuntimeError("executor exploded")

    queue = _make_queue(execute)
    try:
        job = queue.submit(Job("compile", "boom", {}))
        assert job.wait(5.0)
        assert job.status == "failed"
        assert "executor exploded" in job.error
    finally:
        queue.close()


def test_queue_fails_forgotten_jobs():
    def execute(jobs):
        pass  # never calls finish/fail

    queue = _make_queue(execute)
    try:
        job = queue.submit(Job("compile", "lost", {}))
        assert job.wait(5.0)
        assert job.status == "failed"  # the queue backstops it
    finally:
        queue.close()


def test_queue_rejects_after_close():
    queue = _make_queue(lambda jobs: None)
    queue.close()
    with pytest.raises(RuntimeError):
        queue.submit(Job("compile", "late", {}))


# ----------------------------------------------------------------------
# Route dispatch (no HTTP socket needed)
# ----------------------------------------------------------------------
class _FakeState:
    class config:
        wait_timeout = 1.0

    def health(self):
        return {"status": "ok"}

    def stats(self):
        return {"service": {}}

    def submit(self, kind, request):
        return Job.completed(kind, "deadbeef", request, {"result": {"k": kind}})

    def job_payload(self, digest):
        if digest == "known":
            return {"job_id": digest, "status": "done"}
        return None


def test_dispatch_routes():
    state = _FakeState()
    assert dispatch(state, "GET", "/v1/health", None)[0] == 200
    assert dispatch(state, "GET", "/v1/stats", None)[0] == 200
    status, payload = dispatch(state, "POST", "/v1/compile", {"model": "x"})
    assert status == 200 and payload["result"] == {"k": "compile"}
    assert dispatch(state, "GET", "/v1/jobs/known", None)[0] == 200


def test_dispatch_error_mapping():
    state = _FakeState()
    with pytest.raises(ServiceError) as exc:
        dispatch(state, "POST", "/v1/health", None)
    assert exc.value.status == 405
    with pytest.raises(ServiceError) as exc:
        dispatch(state, "GET", "/v1/jobs/missing", None)
    assert exc.value.status == 404
    with pytest.raises(ServiceError) as exc:
        dispatch(state, "GET", "/v1/nope", None)
    assert exc.value.status == 404
    with pytest.raises(ServiceError) as exc:
        dispatch(state, "POST", "/v1/compile", {"timeout": -1})
    assert exc.value.status == 400


# ----------------------------------------------------------------------
# Degraded snapshot families (the cache-stats regression)
# ----------------------------------------------------------------------
def _commit_family(snapshot_dir):
    """Compile once with snapshots on; returns the store and family dir."""
    target = ising_chain(3)
    aais = aais_for_device("rydberg-1d", 3)
    compiler = QTurboCompiler(aais, snapshots=snapshot_dir)
    result = compiler.compile(target, 1.0)
    assert result.success
    store = SnapshotStore(snapshot_dir)
    families = store.families()
    assert len(families) == 1
    return store, families[0]


def test_disk_stats_reports_gcd_blobs_as_degraded(tmp_path):
    store, family = _commit_family(tmp_path / "snapshots")
    assert store.disk_stats()["families"] == 1

    # Simulate a partial GC / crashed eviction: family.json survives
    # but a unit blob is gone.
    blob = next(store.family_dir(family).glob("after-*.pkl"))
    blob.unlink()

    stats = store.disk_stats()
    assert stats["degraded"] == 1
    assert stats["families"] == 0  # a degraded family is not usable


def test_disk_stats_deep_catches_scribbled_blob(tmp_path):
    store, family = _commit_family(tmp_path / "snapshots")
    blob = next(store.family_dir(family).glob("after-*.pkl"))
    payload = blob.read_bytes()
    # Same size, different bits: only the deep (digest) scan sees it.
    blob.write_bytes(b"\x00" * len(payload))
    assert store.disk_stats()["degraded"] == 0  # shallow scan fooled
    deep = store.disk_stats(deep=True)
    assert deep["degraded"] == 1 and deep["families"] == 0


def test_gc_evicts_degraded_families(tmp_path):
    store, family = _commit_family(tmp_path / "snapshots")
    next(store.family_dir(family).glob("after-*.pkl")).unlink()
    outcome = store.gc()
    assert outcome["degraded_removed"] == 1
    assert store.families() == []
    assert not store.family_dir(family).exists()


def test_cache_stats_cli_reports_degraded(tmp_path, capsys):
    store, family = _commit_family(tmp_path / "snapshots")
    blob = next(store.family_dir(family).glob("after-*.pkl"))
    blob.write_bytes(b"\x00" * blob.stat().st_size)  # same-size scribble

    rc = cli_main(["cache-stats", "--snapshot-dir", str(tmp_path / "snapshots")])
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    disk = payload["snapshot_disk"]
    # The CLI scan is deep: a bit-flipped blob must not count as usable.
    assert disk["degraded"] == 1
    assert disk["families"] == 0
