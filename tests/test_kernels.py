"""The matrix-free simulation backend: Pauli kernels, the Lanczos and
Chebyshev propagators, backend auto-selection boundaries, the
configurable operator cap, and propagator-cache eviction."""

import json

import numpy as np
import pytest
from scipy.linalg import expm

from repro.cli import main as cli_main
from repro.errors import SimulationError
from repro.hamiltonian import Hamiltonian, PauliString
from repro.hamiltonian.expression import x, y, z, zz
from repro.sim import (
    NoisySimulator,
    apply_hamiltonian,
    apply_pauli_string,
    clear_simulation_caches,
    configure_simulation_caches,
    evolve,
    evolve_block,
    expm_multiply_matrix_free,
    hamiltonian_kernel,
    kernel_cache_stats,
    lanczos_expm_multiply,
    select_backend,
    simulation_cache_stats,
)
from repro.sim.kernels import HamiltonianKernel, chebyshev_expm_multiply
from repro.sim.operators import (
    clear_operator_cache,
    configure_operator_limits,
    hamiltonian_matrix,
    max_operator_qubits,
    pauli_string_matrix,
)

ATOL = 1e-10


@pytest.fixture(autouse=True)
def fresh_caches_and_limits():
    """Every test starts and ends with default caches and limits."""
    clear_operator_cache()
    clear_simulation_caches()
    yield
    clear_operator_cache()
    clear_simulation_caches()
    configure_operator_limits(max_qubits=16)
    configure_simulation_caches(
        propagator_maxsize=256,
        propagator_max_qubits=10,
        propagator_build_max_qubits=7,
        memory_budget_bytes=512 * 2**20,
        matrix_free_min_qubits=12,
        matrix_free_max_columns=32,
    )


def random_hamiltonian(
    rng: np.random.Generator, num_qubits: int, labels=("X", "Y", "Z")
) -> Hamiltonian:
    """A random few-term Hamiltonian over the given Pauli labels."""
    terms = {}
    for _ in range(int(rng.integers(2, 7))):
        weight = int(rng.integers(1, num_qubits + 1))
        qubits = rng.choice(num_qubits, size=weight, replace=False)
        ops = {int(q): str(rng.choice(labels)) for q in qubits}
        terms[PauliString(ops)] = float(rng.normal())
    return Hamiltonian(terms)


def random_block(rng: np.random.Generator, num_qubits: int, k: int):
    block = rng.standard_normal((2**num_qubits, k)) + 1j * rng.standard_normal(
        (2**num_qubits, k)
    )
    return block / np.linalg.norm(block, axis=0)


class TestPauliApplication:
    @pytest.mark.parametrize("label", ["X", "Y", "Z"])
    def test_single_qubit_strings_match_matrices(self, label):
        rng = np.random.default_rng(0)
        n = 4
        state = random_block(rng, n, 1)[:, 0]
        for qubit in range(n):
            string = PauliString.single(label, qubit)
            expected = pauli_string_matrix(string, n) @ state
            assert np.allclose(
                apply_pauli_string(string, state, n), expected, atol=ATOL
            )

    @pytest.mark.parametrize("seed", range(8))
    def test_random_strings_match_matrices(self, seed):
        """All term types — X/Y/Z mixtures of every weight — on blocks."""
        rng = np.random.default_rng(seed)
        n = 5
        weight = int(rng.integers(1, n + 1))
        qubits = rng.choice(n, size=weight, replace=False)
        string = PauliString(
            {int(q): str(rng.choice(["X", "Y", "Z"])) for q in qubits}
        )
        block = random_block(rng, n, 3)
        expected = pauli_string_matrix(string, n) @ block
        got = apply_pauli_string(string, block, n, coeff=1.5j)
        assert np.allclose(got, 1.5j * expected, atol=ATOL)

    def test_identity_string(self):
        rng = np.random.default_rng(3)
        state = random_block(rng, 3, 1)[:, 0]
        out = apply_pauli_string(PauliString.identity(), state, 3, coeff=2.0)
        assert np.allclose(out, 2.0 * state, atol=ATOL)

    @pytest.mark.parametrize("seed", range(6))
    def test_hamiltonian_apply_matches_sparse(self, seed):
        rng = np.random.default_rng(100 + seed)
        n = int(rng.integers(2, 7))
        h = random_hamiltonian(rng, n)
        block = random_block(rng, n, 4)
        dense = hamiltonian_matrix(h, n).toarray()
        assert np.allclose(
            apply_hamiltonian(h, block, n), dense @ block, atol=ATOL
        )
        assert np.allclose(
            apply_hamiltonian(h, block[:, 0], n),
            dense @ block[:, 0],
            atol=ATOL,
        )

    def test_out_of_range_qubit_rejected(self):
        rng = np.random.default_rng(4)
        state = random_block(rng, 3, 1)[:, 0]
        with pytest.raises(SimulationError):
            apply_pauli_string(PauliString.single("X", 5), state, 3)
        with pytest.raises(SimulationError):
            apply_hamiltonian(x(0) + y(5), state, 3)
        with pytest.raises(SimulationError):
            evolve(state, x(0) + y(5), 0.5, 3, backend="matrix_free")

    def test_spectral_bounds_contain_spectrum(self):
        rng = np.random.default_rng(5)
        for seed in range(5):
            h = random_hamiltonian(np.random.default_rng(seed), 4)
            if h.is_zero:
                continue
            kernel = HamiltonianKernel(h, 4)
            lo, hi = kernel.spectral_bounds()
            eigenvalues = np.linalg.eigvalsh(
                hamiltonian_matrix(h, 4).toarray()
            )
            assert lo <= eigenvalues.min() + 1e-9
            assert hi >= eigenvalues.max() - 1e-9
        del rng

    def test_linear_operator_wrapper(self):
        rng = np.random.default_rng(6)
        h = random_hamiltonian(rng, 3)
        state = random_block(rng, 3, 1)[:, 0]
        operator = HamiltonianKernel(h, 3).as_linear_operator()
        expected = hamiltonian_matrix(h, 3).toarray() @ state
        assert np.allclose(operator.matvec(state), expected, atol=ATOL)
        assert np.allclose(operator.rmatvec(state), expected, atol=ATOL)


class TestMatrixFreePropagators:
    @pytest.mark.parametrize("seed", range(10))
    def test_evolve_matches_dense_and_sparse(self, seed):
        """Acceptance: matrix-free ≡ dense ≡ sparse to ≤1e-10."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 7))
        h = random_hamiltonian(rng, n)
        if h.is_zero:
            return
        duration = float(rng.uniform(0.1, 2.0))
        block = random_block(rng, n, 4)
        mf = evolve(block, h, duration, n, backend="matrix_free")
        dense = evolve(block, h, duration, n, backend="dense")
        sparse = evolve(block, h, duration, n, backend="sparse")
        assert np.allclose(mf, dense, atol=ATOL)
        assert np.allclose(mf, sparse, atol=ATOL)

    @pytest.mark.parametrize("labels", [("Z",), ("X",), ("Y",), ("X", "Z")])
    def test_evolve_matches_per_term_type(self, labels):
        rng = np.random.default_rng(hash(labels) % 2**32)
        n = 4
        h = random_hamiltonian(rng, n, labels=labels)
        if h.is_zero:
            return
        state = random_block(rng, n, 1)[:, 0]
        mf = evolve(state, h, 0.8, n, backend="matrix_free")
        reference = evolve(state, h, 0.8, n, backend="sparse")
        assert np.allclose(mf, reference, atol=ATOL)

    def test_chebyshev_and_lanczos_agree_with_expm(self):
        rng = np.random.default_rng(11)
        n = 5
        h = random_hamiltonian(rng, n)
        kernel = hamiltonian_kernel(h, n)
        block = random_block(rng, n, 2)
        reference = (
            expm(-1j * 1.3 * hamiltonian_matrix(h, n).toarray()) @ block
        )
        assert np.allclose(
            chebyshev_expm_multiply(kernel, block, 1.3), reference, atol=1e-9
        )
        assert np.allclose(
            lanczos_expm_multiply(kernel, block, 1.3), reference, atol=1e-9
        )

    def test_long_duration_large_span(self):
        """Chebyshev kicks in for long phase spans and stays accurate."""
        rng = np.random.default_rng(12)
        n = 4
        h = 10.0 * zz(0, 1) + 8.0 * x(2) + 6.0 * y(3) + 5.0 * z(0)
        state = random_block(rng, n, 1)[:, 0]
        reference = expm(
            -1j * 4.0 * hamiltonian_matrix(h, n).toarray()
        ) @ state
        got = expm_multiply_matrix_free(h, state, 4.0, n)
        assert np.allclose(got, reference, atol=1e-8)

    def test_zero_duration_and_zero_norm(self):
        state = np.zeros(8, dtype=complex)
        out = expm_multiply_matrix_free(zz(0, 1), state, 1.0, 3)
        assert np.allclose(out, state)
        state[0] = 1.0
        out = expm_multiply_matrix_free(zz(0, 1), state, 0.0, 3)
        assert np.allclose(out, state)

    def test_negative_duration_rejected(self):
        state = np.zeros(8, dtype=complex)
        state[0] = 1.0
        with pytest.raises(SimulationError):
            lanczos_expm_multiply(
                hamiltonian_kernel(zz(0, 1), 3), state, -1.0
            )


class TestBackendSelection:
    def test_diagonal_always_wins(self):
        h = zz(0, 1) + 0.5 * z(2)
        for n in (3, 12, 20):
            assert select_backend(h, n) == "diagonal"

    def test_small_registers_stay_dense(self):
        h = zz(0, 1) + x(0)
        assert select_backend(h, 10) == "dense"
        assert select_backend(h, 10, cache=False) == "dense"

    def test_mid_register_cached_is_sparse(self):
        h = zz(0, 1) + x(0)
        assert select_backend(h, 11, cache=True) == "sparse"
        assert select_backend(h, 14, cache=True) == "sparse"

    def test_one_shot_large_register_goes_matrix_free(self):
        """Noise realizations (cache=False) skip per-realization builds."""
        h = zz(0, 1) + x(0)
        assert select_backend(h, 11, cache=False) == "sparse"  # below min
        assert select_backend(h, 12, cache=False) == "matrix_free"
        assert select_backend(h, 16, cache=False) == "matrix_free"

    def test_wide_blocks_amortize_the_sparse_build(self):
        h = zz(0, 1) + x(0)
        assert select_backend(h, 14, columns=64, cache=False) == "sparse"
        assert (
            select_backend(h, 14, columns=8, cache=False) == "matrix_free"
        )

    def test_memory_budget_forces_matrix_free(self):
        h = zz(0, 1) + x(0)
        configure_simulation_caches(memory_budget_bytes=1024)
        assert select_backend(h, 14, cache=True) == "matrix_free"

    def test_wide_blocks_are_chunked_to_the_budget(self):
        """A tiny budget forces column-chunked matrix-free propagation
        without changing the result."""
        from repro.sim.propagators import matrix_free_block_columns

        rng = np.random.default_rng(22)
        n, k = 4, 6
        h = random_hamiltonian(rng, n)
        block = random_block(rng, n, k)
        reference = evolve(block, h, 0.6, n, backend="sparse")
        configure_simulation_caches(memory_budget_bytes=2 * 8 * 2**n * 16)
        assert matrix_free_block_columns(n) == 2  # 3 chunks for k=6
        out = evolve(block, h, 0.6, n, backend="matrix_free")
        assert np.allclose(out, reference, atol=ATOL)

    def test_operator_cap_forces_matrix_free(self):
        h = zz(0, 1) + x(0)
        assert select_backend(h, max_operator_qubits() + 1) == "matrix_free"

    def test_auto_evolution_uses_matrix_free_counter(self):
        rng = np.random.default_rng(21)
        n = 12
        h = random_hamiltonian(rng, n)
        state = random_block(rng, n, 1)[:, 0]
        evolve(state, h, 0.3, n, cache=False)  # auto → matrix_free
        assert simulation_cache_stats()["fast_paths"]["matrix_free"] >= 1

    def test_conflicting_selectors_rejected(self):
        state = np.zeros(8, dtype=complex)
        state[0] = 1.0
        with pytest.raises(SimulationError):
            evolve(state, zz(0, 1), 0.5, 3, method="krylov", backend="dense")
        with pytest.raises(SimulationError):
            evolve(state, zz(0, 1), 0.5, 3, backend="gpu")
        # krylov + sparse spell the same path and must not conflict.
        evolve(state, x(0), 0.5, 3, method="krylov", backend="sparse")


class TestPropagatorCacheEviction:
    def test_block_evolution_at_dense_cutoff_evicts(self):
        """A tiny propagator cache under block evolution must evict, not
        grow — and keep producing correct states while doing so."""
        configure_simulation_caches(propagator_maxsize=2)
        rng = np.random.default_rng(31)
        n = 3
        hams = [random_hamiltonian(rng, n) for _ in range(5)]
        block = random_block(rng, n, 5)
        out = evolve_block(block, hams, 0.4, n, cache=True)
        stats = simulation_cache_stats()["propagator"]
        assert stats["evictions"] >= 3
        assert stats["size"] <= 2
        for i, h in enumerate(hams):
            reference = evolve(block[:, i], h, 0.4, n, method="krylov")
            assert np.allclose(out[:, i], reference, atol=ATOL)

    def test_eviction_keeps_most_recent_entries_hittable(self):
        configure_simulation_caches(propagator_maxsize=1)
        rng = np.random.default_rng(32)
        n = 3
        h = random_hamiltonian(rng, n)
        state = random_block(rng, n, 1)[:, 0]
        evolve(state, h, 0.9, n)
        before = simulation_cache_stats()["propagator"]["hits"]
        evolve(state, h, 0.9, n)
        assert simulation_cache_stats()["propagator"]["hits"] == before + 1


class TestConfigurableOperatorCap:
    def test_error_names_matrix_free_escape_hatch(self):
        with pytest.raises(SimulationError) as error:
            pauli_string_matrix(PauliString.single("X", 0), 30)
        message = str(error.value)
        assert "matrix_free" in message
        assert "configure_operator_limits" in message

    def test_cap_is_configurable(self):
        configure_operator_limits(max_qubits=3)
        with pytest.raises(SimulationError):
            hamiltonian_matrix(zz(0, 1), 4)
        configure_operator_limits(max_qubits=16)
        hamiltonian_matrix(zz(0, 1), 4)

    def test_invalid_cap_rejected(self):
        with pytest.raises(SimulationError):
            configure_operator_limits(max_qubits=0)

    def test_matrix_free_ignores_the_cap(self):
        configure_operator_limits(max_qubits=3)
        rng = np.random.default_rng(41)
        state = random_block(rng, 4, 1)[:, 0]
        h = zz(0, 1) + x(3)
        out = evolve(state, h, 0.5, 4, backend="matrix_free")
        configure_operator_limits(max_qubits=16)
        reference = evolve(state, h, 0.5, 4, backend="sparse")
        assert np.allclose(out, reference, atol=ATOL)


class TestKernelCaches:
    def test_structure_shared_across_coefficient_perturbations(self):
        """Noise-realization pattern: same support, new coefficients."""
        rng = np.random.default_rng(51)
        n = 4
        strings = [PauliString({0: "X"}), PauliString({1: "Z", 2: "Z"})]
        state = random_block(rng, n, 1)[:, 0]
        for _ in range(5):
            h = Hamiltonian(
                {s: float(rng.normal()) for s in strings}
            )
            evolve(state, h, 0.3, n, cache=False, backend="matrix_free")
        stats = kernel_cache_stats()["structure"]
        assert stats["misses"] == 1
        assert stats["hits"] == 4

    def test_cache_false_stores_no_kernel(self):
        rng = np.random.default_rng(52)
        h = random_hamiltonian(rng, 3)
        state = random_block(rng, 3, 1)[:, 0]
        evolve(state, h, 0.4, 3, cache=False, backend="matrix_free")
        assert kernel_cache_stats()["kernel"]["size"] == 0
        evolve(state, h, 0.4, 3, cache=True, backend="matrix_free")
        assert kernel_cache_stats()["kernel"]["size"] == 1

    def test_stats_surface_through_simulation_cache_stats(self):
        stats = simulation_cache_stats()
        assert set(stats["kernel"]) == {"sign", "structure", "kernel"}
        assert "memory_budget_bytes" in stats["limits"]
        assert "matrix_free" in stats["fast_paths"]

    def test_cli_cache_stats_includes_kernels(self, capsys):
        assert cli_main(["cache-stats"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "kernel" in payload["simulation_cache"]

    def test_invalid_selection_limits_rejected(self):
        with pytest.raises(SimulationError):
            configure_simulation_caches(matrix_free_min_qubits=0)
        with pytest.raises(SimulationError):
            configure_simulation_caches(matrix_free_max_columns=-1)
        with pytest.raises(SimulationError):
            configure_simulation_caches(memory_budget_bytes=0)

    def test_cli_rejects_backend_with_legacy_loop(self, capsys):
        code = cli_main(
            [
                "simulate",
                "--model",
                "ising_chain",
                "-n",
                "3",
                "--shots",
                "20",
                "--no-vectorized",
                "--backend",
                "matrix_free",
            ]
        )
        assert code == 2
        assert "--no-vectorized" in capsys.readouterr().err

    def test_cli_legacy_loop_records_sparse_backend(self, capsys):
        code = cli_main(
            [
                "simulate",
                "--model",
                "ising_chain",
                "-n",
                "3",
                "--shots",
                "20",
                "--noise-samples",
                "2",
                "--no-vectorized",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["backend"] == "sparse"


class TestNoisySimulatorBackend:
    def test_backend_validated(self):
        with pytest.raises(SimulationError):
            NoisySimulator(backend="magic")

    def test_matrix_free_matches_legacy_samples(self, paper_aais):
        from repro import QTurboCompiler
        from repro.models import ising_chain

        schedule = (
            QTurboCompiler(paper_aais).compile(ising_chain(3), 1.0).schedule
        )
        fast = NoisySimulator(
            noise_samples=4, seed=9, backend="matrix_free"
        )
        legacy = NoisySimulator(noise_samples=4, seed=9, vectorized=False)
        a = fast.run(schedule, shots=120)
        b = legacy.run(schedule, shots=120)
        assert np.array_equal(a, b)


class TestBenchReportSchema:
    def test_all_bench_reports_share_schema_fields(self):
        """benchmark / quick / runs are the cross-benchmark contract."""
        from pathlib import Path

        repo = Path(__file__).resolve().parent.parent
        reports = sorted(repo.glob("BENCH_*.json"))
        assert len(reports) >= 4
        for report in reports:
            payload = json.loads(report.read_text())
            for field in ("benchmark", "quick", "runs"):
                assert field in payload, f"{report.name} missing {field}"
            assert isinstance(payload["runs"], list)
            assert payload["runs"]
