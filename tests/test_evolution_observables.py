"""Unit tests for state evolution and observables."""

import math

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.hamiltonian import (
    Hamiltonian,
    PauliString,
    PiecewiseHamiltonian,
    x,
    z,
    zz,
)
from repro.sim import (
    evolve,
    evolve_piecewise,
    expectation,
    ground_state,
    magnetization_profile,
    pauli_expectation,
    plus_state,
    state_fidelity,
    z_average,
    zz_average,
)


class TestStates:
    def test_ground_state(self):
        state = ground_state(2)
        assert state[0] == 1.0
        assert np.allclose(np.linalg.norm(state), 1.0)

    def test_plus_state(self):
        state = plus_state(2)
        assert np.allclose(np.abs(state) ** 2, 0.25)

    def test_invalid_size(self):
        with pytest.raises(SimulationError):
            ground_state(0)


class TestEvolve:
    def test_zero_time_is_identity(self):
        state = plus_state(2)
        assert np.allclose(evolve(state, zz(0, 1), 0.0, 2), state)

    def test_zero_hamiltonian_is_identity(self):
        state = plus_state(2)
        evolved = evolve(state, Hamiltonian.zero(), 3.0, 2)
        assert np.allclose(evolved, state)

    def test_rabi_flop(self):
        # H = X on one qubit: |0> rotates to |1> at t = π/2.
        state = evolve(ground_state(1), x(0), math.pi / 2, 1)
        assert abs(state[1]) == pytest.approx(1.0, abs=1e-9)

    def test_z_phase_invisible_to_population(self):
        state = evolve(plus_state(1), z(0), 0.7, 1)
        assert np.allclose(np.abs(state) ** 2, 0.5)

    def test_norm_preserved(self):
        h = zz(0, 1) + x(0) + 0.5 * z(1)
        state = evolve(plus_state(2), h, 2.34, 2)
        assert np.linalg.norm(state) == pytest.approx(1.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(SimulationError):
            evolve(ground_state(1), x(0), -1.0, 1)

    def test_dimension_mismatch(self):
        with pytest.raises(SimulationError):
            evolve(ground_state(2), x(0), 1.0, 3)

    def test_piecewise_matches_sequential(self):
        pw = PiecewiseHamiltonian.from_pairs(
            [(0.3, x(0)), (0.4, z(0))]
        )
        state = evolve_piecewise(ground_state(1), pw, 1)
        manual = evolve(
            evolve(ground_state(1), x(0), 0.3, 1), z(0), 0.4, 1
        )
        assert np.allclose(state, manual)

    def test_commuting_segments_merge(self):
        # Two segments of the same H equal one segment of doubled time.
        h = zz(0, 1) + x(0)
        pw = PiecewiseHamiltonian.from_pairs([(0.5, h), (0.5, h)])
        a = evolve_piecewise(plus_state(2), pw, 2)
        b = evolve(plus_state(2), h, 1.0, 2)
        assert np.allclose(a, b, atol=1e-9)


class TestObservables:
    def test_ground_state_z(self):
        assert z_average(ground_state(3)) == pytest.approx(1.0)

    def test_plus_state_z(self):
        assert z_average(plus_state(3)) == pytest.approx(0.0, abs=1e-12)

    def test_zz_average_ground(self):
        assert zz_average(ground_state(4)) == pytest.approx(1.0)

    def test_zz_average_periodic_vs_open(self):
        # |0101>: periodic pairs all anti-aligned including the wrap.
        state = np.zeros(16, dtype=complex)
        state[0b0101] = 1.0
        assert zz_average(state, periodic=True) == pytest.approx(-1.0)
        assert zz_average(state, periodic=False) == pytest.approx(-1.0)

    def test_zz_needs_two_qubits(self):
        with pytest.raises(SimulationError):
            zz_average(ground_state(1))

    def test_expectation_matches_eigenvalue(self):
        state = ground_state(2)
        assert expectation(state, zz(0, 1)) == pytest.approx(1.0)

    def test_pauli_expectation(self):
        state = plus_state(1)
        assert pauli_expectation(
            state, PauliString.single("X", 0)
        ) == pytest.approx(1.0)

    def test_magnetization_profile(self):
        state = np.zeros(4, dtype=complex)
        state[0b01] = 1.0  # qubit0=0, qubit1=1
        assert magnetization_profile(state) == pytest.approx([1.0, -1.0])

    def test_fidelity(self):
        a = ground_state(2)
        b = plus_state(2)
        assert state_fidelity(a, a) == pytest.approx(1.0)
        assert state_fidelity(a, b) == pytest.approx(0.25)

    def test_fidelity_dimension_mismatch(self):
        with pytest.raises(SimulationError):
            state_fidelity(ground_state(1), ground_state(2))

    def test_bad_state_dimension(self):
        with pytest.raises(SimulationError):
            z_average(np.ones(3, dtype=complex))


class TestPhysics:
    def test_energy_conserved_under_own_evolution(self):
        h = zz(0, 1) + 0.7 * x(0) + 0.3 * x(1)
        state = plus_state(2)
        before = expectation(state, h)
        after = expectation(evolve(state, h, 1.7, 2), h)
        assert after == pytest.approx(before, abs=1e-9)

    def test_ising_zz_dynamics_analytic(self):
        # Under H = Z0 Z1, |++> evolves to cos(t)|++> - i sin(t) ZZ|++>,
        # so <X0> = cos(2t).
        t = 0.4
        state = evolve(plus_state(2), zz(0, 1), t, 2)
        x0 = pauli_expectation(state, PauliString.single("X", 0))
        assert x0 == pytest.approx(math.cos(2 * t), abs=1e-9)
