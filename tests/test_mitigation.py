"""Unit tests for zero-noise extrapolation."""

import numpy as np
import pytest

from repro import QTurboCompiler
from repro.errors import SimulationError
from repro.mitigation import (
    ZNEResult,
    richardson_extrapolate,
    stretch_schedule,
    zne_observables,
)
from repro.models import ising_chain
from repro.sim import (
    NoisySimulator,
    aquila_noise,
    evolve_schedule,
    ground_state,
    state_fidelity,
    z_average,
    zz_average,
)


@pytest.fixture
def schedule(paper_aais):
    return QTurboCompiler(paper_aais).compile(ising_chain(3), 1.0).schedule


class TestStretchSchedule:
    def test_duration_scales(self, schedule):
        stretched = stretch_schedule(schedule, 2.0)
        assert stretched.total_duration == pytest.approx(
            2 * schedule.total_duration
        )

    def test_amplitudes_divide(self, schedule):
        stretched = stretch_schedule(schedule, 2.0)
        original = schedule.segments[0].dynamic_values
        scaled = stretched.segments[0].dynamic_values
        assert scaled["omega_0"] == pytest.approx(original["omega_0"] / 2)
        assert scaled["delta_1"] == pytest.approx(original["delta_1"] / 2)
        assert scaled["phi_0"] == original["phi_0"]  # phases untouched

    def test_physics_invariant(self, schedule):
        """H·T is preserved: the ideal evolution is identical."""
        stretched = stretch_schedule(schedule, 3.0)
        a = evolve_schedule(ground_state(3), schedule)
        b = evolve_schedule(ground_state(3), stretched)
        # Positions (and thus vdW terms) are NOT scaled, so only the
        # driven part is invariant; with vdW present the states differ —
        # check drive observables stay close instead.
        assert state_fidelity(a, b) > 0.5  # sanity: same ballpark
        # The exact invariance holds with interactions scaled out:
        # verified in test_stretch_exact_for_heisenberg below.

    def test_stretch_exact_for_heisenberg(self):
        from repro.aais import HeisenbergAAIS

        aais = HeisenbergAAIS(3)
        schedule = (
            QTurboCompiler(aais).compile(ising_chain(3), 1.0).schedule
        )
        stretched = stretch_schedule(schedule, 2.5)
        a = evolve_schedule(ground_state(3), schedule)
        b = evolve_schedule(ground_state(3), stretched)
        assert state_fidelity(a, b) > 1 - 1e-9

    def test_rejects_compression(self, schedule):
        with pytest.raises(SimulationError):
            stretch_schedule(schedule, 0.5)


class TestRichardson:
    def test_exact_for_linear_noise(self):
        # value(λ) = truth + slope·λ: two points recover truth exactly.
        truth, slope = 0.42, -0.3
        values = [truth + slope * f for f in (1.0, 2.0)]
        assert richardson_extrapolate([1.0, 2.0], values) == pytest.approx(
            truth
        )

    def test_exact_for_quadratic_noise(self):
        truth = -0.1
        factors = [1.0, 1.5, 2.0]
        values = [truth + 0.2 * f + 0.05 * f * f for f in factors]
        assert richardson_extrapolate(factors, values) == pytest.approx(
            truth
        )

    def test_validation(self):
        with pytest.raises(SimulationError):
            richardson_extrapolate([1.0], [0.5])
        with pytest.raises(SimulationError):
            richardson_extrapolate([1.0, 1.0], [0.5, 0.6])
        with pytest.raises(SimulationError):
            richardson_extrapolate([1.0, 2.0], [0.5])


class TestZNEPipeline:
    def test_mitigation_improves_estimate(self):
        """ZNE must beat the raw λ=1 measurement on average.

        Uses the Heisenberg AAIS, where pulse stretching is *exactly*
        physics-invariant (every amplitude scales): the λ-series then
        varies only through noise and Richardson extrapolation reliably
        removes the smoothly-λ-dependent relaxation channel.  (On the
        Rydberg device the position-fixed vdW interaction does not
        stretch, so the ideal observable itself drifts with λ and the
        improvement is a coin flip — see ``test_physics_invariant``.)
        """
        from repro.aais import HeisenbergAAIS

        aais = HeisenbergAAIS(3)
        schedule = (
            QTurboCompiler(aais).compile(ising_chain(3), 1.0).schedule
        )
        ideal = evolve_schedule(ground_state(3), schedule)
        truth = {
            "z_avg": z_average(ideal),
            "zz_avg": zz_average(ideal),
        }
        noise = aquila_noise(t1=3.0, p01=0.0, p10=0.0)
        simulator = NoisySimulator(noise=noise, noise_samples=8, seed=3)
        result = zne_observables(
            schedule,
            simulator,
            factors=(1.0, 2.0, 3.0),
            shots=4000,
            rng=np.random.default_rng(5),
        )
        assert isinstance(result, ZNEResult)
        improvements = result.improvement_over_unmitigated(truth)
        # At least one of the two metrics must improve; relaxation is the
        # dominant, smoothly-λ-dependent channel, which ZNE removes well.
        assert max(improvements.values()) > 0

    def test_raw_series_recorded(self, schedule):
        simulator = NoisySimulator(noise_samples=2, seed=0)
        result = zne_observables(
            schedule, simulator, factors=(1.0, 1.5), shots=50
        )
        assert len(result.raw["z_avg"]) == 2
        assert set(result.mitigated) == {"z_avg", "zz_avg"}

    def test_empty_factors_rejected(self, schedule):
        simulator = NoisySimulator(noise_samples=2, seed=0)
        with pytest.raises(SimulationError):
            zne_observables(schedule, simulator, factors=(), shots=10)
