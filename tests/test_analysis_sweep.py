"""Tests for the sweep harness that powers the Figure-3/4 benchmarks."""


import pytest

from repro.aais import HeisenbergAAIS
from repro.analysis import SweepResult, run_sweep
from repro.models import ising_chain


@pytest.fixture(scope="module")
def small_sweep():
    return run_sweep(
        "ising_chain",
        sizes=(3, 4),
        build_model=ising_chain,
        build_aais=lambda n: HeisenbergAAIS(n),
        t_target=1.0,
        baseline_seed=0,
        baseline_kwargs={"max_restarts": 3},
    )


class TestRunSweep:
    def test_one_point_per_size(self, small_sweep):
        assert [p.size for p in small_sweep.points] == [3, 4]
        assert all(p.model == "ising_chain" for p in small_sweep.points)

    def test_rows_match_headers(self, small_sweep):
        for row in small_sweep.rows():
            assert len(row) == len(SweepResult.HEADERS)

    def test_qturbo_always_succeeds(self, small_sweep):
        assert all(
            p.comparison.qturbo.success for p in small_sweep.points
        )

    def test_aggregates_finite(self, small_sweep):
        speedup = small_sweep.average_speedup()
        assert speedup is not None and speedup > 0

    def test_execution_reduction_range(self, small_sweep):
        reduction = small_sweep.average_execution_reduction()
        if reduction is not None:
            assert reduction <= 100.0

    def test_empty_sweep_aggregates(self):
        empty = SweepResult()
        assert empty.average_speedup() is None
        assert empty.average_execution_reduction() is None
        assert empty.average_error_reduction() is None

    def test_qturbo_kwargs_forwarded(self):
        sweep = run_sweep(
            "ising_chain",
            sizes=(3,),
            build_model=ising_chain,
            build_aais=lambda n: HeisenbergAAIS(n),
            qturbo_kwargs={"refine": False},
        )
        assert sweep.points[0].comparison.qturbo.success
