"""Smoke tests: the shipped examples must run end to end."""

import os
import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"
SRC = pathlib.Path(__file__).parent.parent / "src"


def run_example(name: str, *args: str, timeout: int = 600) -> str:
    # Prepend src/ so the examples work from a checkout without an
    # editable install (harmless when the package is installed).
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(SRC)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
        env=env,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "execution 0.8 µs" in out
    assert "State fidelity" in out


def test_mis_adiabatic_sweep():
    out = run_example("mis_adiabatic_sweep.py")
    assert "4-segment MIS sweep" in out
    assert "fidelity vs discretized target" in out


def test_heisenberg_device():
    out = run_example("heisenberg_device.py")
    assert "Heisenberg device comparison" in out


def test_pxp_blockade():
    out = run_example("pxp_blockade.py")
    assert "PXP chain" in out
    assert "4 µs cap" in out


def test_digital_vs_analog():
    out = run_example("digital_vs_analog.py")
    assert "trotter_steps" in out


def test_zne_mitigation():
    out = run_example("zne_mitigation.py", timeout=900)
    assert "mitigated" in out


@pytest.mark.slow
def test_pxp_scars():
    out = run_example("pxp_scars.py", timeout=900)
    assert "revival" in out


@pytest.mark.slow
def test_aquila_ising_cycle_fast_mode():
    out = run_example("aquila_ising_cycle.py", "--fast", timeout=1200)
    assert "Ising cycle on noisy Aquila" in out
