#!/usr/bin/env python
"""PXP / Rydberg-blockade dynamics beyond the device's wall-clock limit.

Figure 6(b)'s key point: Aquila caps program execution at 4 µs, yet an
analog compiler can simulate a 20 µs *target* evolution because the
compiled pulse is dramatically shorter than the target time — here a
20 µs PXP evolution compresses to ≈0.4 µs (paper: 0.4 µs vs SimuQ's
3.4 µs).  The J/h = 10 ratio keeps the chain in the blockade regime, so
quantum-scar revivals survive.

Run:  python examples/pxp_blockade.py
"""

from repro import QTurboCompiler
from repro.aais import RydbergAAIS
from repro.analysis import format_table
from repro.devices import aquila_spec
from repro.models import pxp_chain
from repro.sim import (
    evolve,
    evolve_schedule,
    ground_state,
    z_average,
    zz_average,
)

N_ATOMS = 6
J, H = 1.26, 0.126  # rad/µs (paper Fig. 6(b))


def main() -> None:
    aais = RydbergAAIS(N_ATOMS, spec=aquila_spec(omega_max=13.8))
    compiler = QTurboCompiler(aais)
    model = pxp_chain(N_ATOMS, j=J, h=H)

    rows = []
    for t_target in (5.0, 10.0, 15.0, 20.0):
        result = compiler.compile(model, t_target)
        ideal = evolve(ground_state(N_ATOMS), model, t_target, N_ATOMS)
        compiled = evolve_schedule(ground_state(N_ATOMS), result.schedule)
        rows.append(
            [
                t_target,
                result.execution_time,
                t_target / result.execution_time,
                z_average(ideal),
                z_average(compiled),
                zz_average(ideal, periodic=False),
                zz_average(compiled, periodic=False),
            ]
        )
    print(
        format_table(
            [
                "T_tar(µs)",
                "T_dev(µs)",
                "compress",
                "Z_theory",
                "Z_pulse",
                "ZZ_theory",
                "ZZ_pulse",
            ],
            rows,
            title=f"{N_ATOMS}-atom PXP chain, J/h = 10 (blockade regime)",
            precision=3,
        )
    )
    print(
        "\nEvery compiled pulse fits under Aquila's 4 µs cap even though"
        "\nthe 20 µs target exceeds it fivefold — the compiler advantage"
        "\nthe paper highlights."
    )


if __name__ == "__main__":
    main()
