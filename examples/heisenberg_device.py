#!/usr/bin/env python
"""Compiling onto a Heisenberg-AAIS device (superconducting / ion style).

Every drive amplitude on this instruction set is runtime dynamic, so
QTurbo solves the program *exactly* (zero compilation error — the 100%
error reduction of Figure 4) and picks the provably shortest pulse: the
bottleneck drive runs at its hardware maximum.

Run:  python examples/heisenberg_device.py
"""

from repro import QTurboCompiler
from repro.aais import HeisenbergAAIS
from repro.analysis import format_table
from repro.baseline import SimuQStyleCompiler
from repro.devices import HeisenbergSpec
from repro.models import heisenberg_chain, ising_chain, kitaev_chain


def main() -> None:
    spec = HeisenbergSpec(single_max=2.0, pair_max=0.5, topology="chain")
    models = {
        "ising_chain": ising_chain,
        "heisenberg_chain": heisenberg_chain,
        "kitaev": kitaev_chain,
    }
    rows = []
    for name, build in models.items():
        n = 6
        aais = HeisenbergAAIS(n, spec=spec)
        target = build(n)
        q = QTurboCompiler(aais).compile(target, 1.0)
        b = SimuQStyleCompiler(aais, seed=0).compile(target, 1.0)
        rows.append(
            [
                name,
                n,
                q.compile_seconds * 1e3,
                b.compile_seconds * 1e3 if b.success else float("nan"),
                q.execution_time,
                b.execution_time if b.success else float("nan"),
                100 * q.relative_error,
                100 * b.relative_error if b.success else float("nan"),
            ]
        )
    print(
        format_table(
            [
                "model",
                "N",
                "qturbo_ms",
                "simuq_ms",
                "qturbo_T",
                "simuq_T",
                "qturbo_err%",
                "simuq_err%",
            ],
            rows,
            title="Heisenberg device comparison (pair drives ≤ 0.5 rad/µs)",
            precision=3,
        )
    )
    print(
        "\nNote: QTurbo's T is exactly |J|·T_tar / pair_max — the"
        " bottleneck two-qubit drive at maximum amplitude."
    )


if __name__ == "__main__":
    main()
