#!/usr/bin/env python
"""Figure-6(a) style experiment: a 12-atom Ising cycle on (simulated) Aquila.

Compiles the model with both QTurbo and the SimuQ-style baseline, executes
both pulses on the noisy Aquila stand-in, and compares the measured
Z_avg / ZZ_avg against the exact theory curve.  Shorter pulses suffer less
noise — QTurbo's 0.25 µs pulse lands much closer to theory than the
baseline's ~1 µs-plus pulse, mirroring the paper's real-device result
(59–80% error reduction on these metrics).

Run:  python examples/aquila_ising_cycle.py [--fast]
"""

import sys

import numpy as np

from repro import QTurboCompiler
from repro.aais import RydbergAAIS
from repro.analysis import format_table
from repro.baseline import SimuQStyleCompiler
from repro.devices import aquila_spec
from repro.models import ising_cycle
from repro.sim import (
    NoisySimulator,
    aquila_noise,
    evolve,
    ground_state,
    z_average,
    zz_average,
)

N_ATOMS = 12
J, H = 0.157, 0.785  # rad/µs, the paper's Fig. 6(a) parameters


def main(fast: bool = False) -> None:
    shots = 200 if fast else 1000
    noise_samples = 4 if fast else 12
    t_targets = [0.5, 1.0] if fast else [0.5, 0.625, 0.75, 0.875, 1.0]

    aais = RydbergAAIS(N_ATOMS, spec=aquila_spec(omega_max=6.28))
    qturbo = QTurboCompiler(aais)
    simuq = SimuQStyleCompiler(aais, seed=0, max_restarts=4)
    noisy = NoisySimulator(
        noise=aquila_noise(t1=4.0), noise_samples=noise_samples, seed=7
    )
    model = ising_cycle(N_ATOMS, j=J, h=H)

    rows = []
    for t_target in t_targets:
        ideal = evolve(ground_state(N_ATOMS), model, t_target, N_ATOMS)
        theory = (z_average(ideal), zz_average(ideal))

        q_result = qturbo.compile(model, t_target)
        q_metrics = noisy.observables(q_result.schedule, shots=shots)

        b_result = simuq.compile(model, t_target)
        if b_result.success:
            b_metrics = noisy.observables(b_result.schedule, shots=shots)
            b_duration = b_result.execution_time
        else:
            b_metrics = {"z_avg": float("nan"), "zz_avg": float("nan")}
            b_duration = float("nan")

        rows.append(
            [
                t_target,
                theory[0],
                q_metrics["z_avg"],
                b_metrics["z_avg"],
                theory[1],
                q_metrics["zz_avg"],
                b_metrics["zz_avg"],
                q_result.execution_time,
                b_duration,
            ]
        )

    print(
        format_table(
            [
                "T_tar",
                "Z_th",
                "Z_qturbo",
                "Z_simuq",
                "ZZ_th",
                "ZZ_qturbo",
                "ZZ_simuq",
                "T_q(µs)",
                "T_s(µs)",
            ],
            rows,
            title=f"12-atom Ising cycle on noisy Aquila ({shots} shots)",
            precision=3,
        )
    )

    z_err_q = np.nanmean([abs(r[2] - r[1]) for r in rows])
    z_err_b = np.nanmean([abs(r[3] - r[1]) for r in rows])
    print(
        f"\nmean |Z_avg error|: QTurbo {z_err_q:.3f} vs SimuQ {z_err_b:.3f}"
        f"  (reduction {100 * (1 - z_err_q / z_err_b):.0f}%)"
        if z_err_b > 0
        else ""
    )


if __name__ == "__main__":
    main(fast="--fast" in sys.argv)
