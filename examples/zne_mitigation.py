#!/usr/bin/env python
"""Zero-noise extrapolation on top of compiled pulses.

The paper's related-work section points to error mitigation for analog
simulation (Meher et al., QCE'24).  Pulse *stretching* — amplitudes ÷ λ,
duration × λ — leaves the ideal physics invariant and scales up the
time-dependent noise, so measuring at a few
modest stretches (λ ≤ 1.5, where decay is still ≈linear) and
extrapolating to λ → 0 removes the smoothly λ-dependent error.

Run:  python examples/zne_mitigation.py

Declarative equivalent (adds a stretch-factor sweep + artifact store):
``repro run examples/experiments/zne_stretch_study.yaml``
"""

import numpy as np

from repro import QTurboCompiler
from repro.aais import RydbergAAIS
from repro.analysis import format_table
from repro.devices import paper_example_spec
from repro.mitigation import zne_observables
from repro.models import ising_chain
from repro.sim import (
    NoisySimulator,
    aquila_noise,
    evolve_schedule,
    ground_state,
    z_average,
    zz_average,
)

# Two-point linear extrapolation: robust to shot noise (a
# higher-order fit amplifies statistical error ~10x).
FACTORS = (1.0, 1.5)
SHOTS = 8000


def main() -> None:
    aais = RydbergAAIS(3, spec=paper_example_spec())
    result = QTurboCompiler(aais).compile(ising_chain(3), 1.0)
    schedule = result.schedule

    ideal = evolve_schedule(ground_state(3), schedule)
    truth = {"z_avg": z_average(ideal), "zz_avg": zz_average(ideal)}

    simulator = NoisySimulator(
        noise=aquila_noise(t1=3.0, p01=0.0, p10=0.0),
        noise_samples=16,
        seed=3,
    )
    zne = zne_observables(
        schedule,
        simulator,
        factors=FACTORS,
        shots=SHOTS,
        rng=np.random.default_rng(5),
    )

    rows = []
    for key in ("z_avg", "zz_avg"):
        rows.append(
            [
                key,
                truth[key],
                zne.raw[key][0],
                *zne.raw[key][1:],
                zne.mitigated[key],
            ]
        )
    headers = (
        ["metric", "ideal", "raw λ=1"]
        + [f"raw λ={f:g}" for f in FACTORS[1:]]
        + ["mitigated"]
    )
    print(
        format_table(
            headers,
            rows,
            title=f"ZNE on the 3-atom Ising-chain pulse ({SHOTS} shots/λ)",
            precision=3,
        )
    )
    for key in ("z_avg", "zz_avg"):
        raw_error = abs(zne.raw[key][0] - truth[key])
        mitigated_error = abs(zne.mitigated[key] - truth[key])
        print(
            f"{key}: |error| raw {raw_error:.3f} -> mitigated "
            f"{mitigated_error:.3f}"
        )


if __name__ == "__main__":
    main()
