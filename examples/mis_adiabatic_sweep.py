#!/usr/bin/env python
"""Time-dependent compilation: an adiabatic MIS sweep on a Rydberg chain.

The MIS-chain Hamiltonian (Table 2) ramps its detuning from +U to −U; the
compiler discretizes the sweep into piecewise-constant segments
(Section 5.3) with one *shared* atom layout and per-segment pulse settings
whose evolution times stretch as needed.  This is the Figure-5(b)
scenario.

Run:  python examples/mis_adiabatic_sweep.py

Declarative equivalent (adds a discretization sweep + artifact store):
``repro run examples/experiments/mis_adiabatic.yaml``
"""

from repro import QTurboCompiler
from repro.aais import RydbergAAIS
from repro.analysis import format_table
from repro.devices import RydbergSpec
from repro.devices.base import TrapGeometry
from repro.models import mis_chain
from repro.sim import (
    evolve_piecewise,
    evolve_schedule,
    ground_state,
    state_fidelity,
)

N_ATOMS = 6
SEGMENTS = 4


def main() -> None:
    spec = RydbergSpec(
        name="rydberg-1d",
        delta_max=20.0,
        omega_max=2.5,
        geometry=TrapGeometry(extent=120.0, min_spacing=4.0, dimension=1),
        max_time=4.0,
    )
    aais = RydbergAAIS(N_ATOMS, spec=spec)
    sweep = mis_chain(N_ATOMS, duration=1.0, u=1.0, omega=1.0, alpha=1.0)

    compiler = QTurboCompiler(aais)
    result = compiler.compile_time_dependent(sweep, num_segments=SEGMENTS)
    print("==", result.summary())

    rows = []
    for index, segment in enumerate(result.segments):
        rows.append(
            [
                index,
                segment.duration,
                segment.values.get("delta_0", 0.0),
                segment.values.get("omega_0", 0.0),
                100 * segment.relative_error,
            ]
        )
    print(
        format_table(
            ["segment", "T_sim(µs)", "delta_0", "omega_0", "rel_err(%)"],
            rows,
            title=f"\n{SEGMENTS}-segment MIS sweep on {N_ATOMS} atoms",
            precision=3,
        )
    )

    positions = [
        result.segments[0].values[f"x_{i}"] for i in range(N_ATOMS)
    ]
    print("\nShared atom layout (µm):", [round(x, 2) for x in positions])

    # Verify against the discretized target evolution.
    pw = sweep.discretize(SEGMENTS)
    ideal = evolve_piecewise(ground_state(N_ATOMS), pw, N_ATOMS)
    compiled = evolve_schedule(ground_state(N_ATOMS), result.schedule)
    print(f"fidelity vs discretized target: "
          f"{state_fidelity(ideal, compiled):.6f}")
    print(f"total device time: {result.execution_time:.4f} µs "
          f"for a 1.0 µs target sweep")


if __name__ == "__main__":
    main()
