#!/usr/bin/env python
"""Quickstart: compile a 3-qubit Ising chain onto a Rydberg simulator.

Reproduces the paper's Section-5 worked example end to end:

* target  H = Z1Z2 + Z2Z3 + X1 + X2 + X3,  evolved for T_tar = 1 µs;
* device  Rydberg AAIS with Δ ≤ 20, Ω ≤ 2.5 (rad/µs);
* result  a 0.8 µs pulse with atoms at 0 / 7.46 / 14.92 µm.

Run:  python examples/quickstart.py
"""

from repro import QTurboCompiler
from repro.aais import RydbergAAIS
from repro.devices import paper_example_spec
from repro.models import ising_chain
from repro.pulse import to_json
from repro.sim import evolve, evolve_schedule, ground_state, state_fidelity


def main() -> None:
    n = 3
    target = ising_chain(n)
    print("Target Hamiltonian:", target)

    aais = RydbergAAIS(n, spec=paper_example_spec())
    compiler = QTurboCompiler(aais)
    result = compiler.compile(target, t_target=1.0)

    print("\n==", result.summary())
    print(f"stage timings: {result.stage_timings.as_dict()}")

    segment = result.segments[0]
    print("\nSolved pulse parameters:")
    for name in sorted(segment.values):
        print(f"  {name:>10s} = {segment.values[name]: .4f}")

    print("\nSchedule JSON:")
    print(to_json(result.schedule))

    # Close the loop: the compiled pulse must reproduce the target physics.
    ideal = evolve(ground_state(n), target, 1.0, n)
    compiled = evolve_schedule(ground_state(n), result.schedule)
    fidelity = state_fidelity(ideal, compiled)
    print(f"\nState fidelity (target evolution vs compiled pulse): "
          f"{fidelity:.6f}")
    print(f"Theorem-1 error bound: {result.error_bound:.4f} "
          f"(measured L1 error {result.error_l1:.4f})")


if __name__ == "__main__":
    main()
