#!/usr/bin/env python
"""Quantum many-body scars through the compiler, end to end.

The PXP model (Turner et al. 2018 — a source of the paper's benchmark
suite) shows anomalous revivals from the Néel state |1010…⟩: fidelity
returns periodically and bipartite entanglement grows slowly, unlike
generic thermalizing dynamics.  This script compiles the PXP chain onto
the (simulated) Aquila device and checks that the *compiled pulse*
reproduces the scar phenomenology — revivals survive compilation because
QTurbo's pulse realizes the target Hamiltonian faithfully.

Run:  python examples/pxp_scars.py
"""

import numpy as np

from repro import QTurboCompiler
from repro.aais import RydbergAAIS
from repro.analysis import format_table
from repro.devices import aquila_spec
from repro.models import pxp_chain
from repro.sim import (
    bipartite_entropy,
    evolve,
    evolve_schedule,
    state_fidelity,
)

N_ATOMS = 8
J, H = 1.26, 0.126  # blockade regime, J/h = 10 (paper Fig. 6(b))


def neel_state(n: int) -> np.ndarray:
    """|1010…⟩ — the scarred initial state."""
    index = 0
    for qubit in range(0, n, 2):
        index |= 1 << (n - 1 - qubit)
    state = np.zeros(2**n, dtype=complex)
    state[index] = 1.0
    return state


def main() -> None:
    aais = RydbergAAIS(N_ATOMS, spec=aquila_spec(omega_max=13.8))
    compiler = QTurboCompiler(aais)
    model = pxp_chain(N_ATOMS, j=J, h=H)
    initial = neel_state(N_ATOMS)

    # The Rabi period of the PXP revival is ~2π/(2h·√N-ish); sweep a
    # window of target times and watch fidelity against t=0.
    rows = []
    for t_target in np.linspace(4.0, 40.0, 7):
        result = compiler.compile(model, float(t_target))
        ideal = evolve(initial, model, float(t_target), N_ATOMS)
        compiled = evolve_schedule(initial, result.schedule)
        rows.append(
            [
                t_target,
                result.execution_time,
                state_fidelity(initial, ideal),
                state_fidelity(initial, compiled),
                bipartite_entropy(ideal),
                bipartite_entropy(compiled),
            ]
        )
    print(
        format_table(
            [
                "T_tar(µs)",
                "T_dev(µs)",
                "revival_th",
                "revival_pulse",
                "S_ent_th",
                "S_ent_pulse",
            ],
            rows,
            title=f"{N_ATOMS}-atom PXP scars: Néel-state revivals",
            precision=3,
        )
    )
    revivals = max(row[3] for row in rows)
    print(
        f"\nmax Néel-revival fidelity through the compiled pulse: "
        f"{revivals:.3f}"
    )
    print(
        "Entanglement entropy through the pulse tracks theory — the"
        "\ncompiled dynamics preserve the scar structure."
    )


if __name__ == "__main__":
    main()
