#!/usr/bin/env python
"""Digital vs analog: the paper's Section-1 motivation, quantified.

Digital quantum simulation Trotterizes the evolution into gates; the gate
count explodes with system size and target accuracy (Childs et al.: ~10¹⁰
gates for a ~100-qubit system).  An analog compiler emits *one pulse*.
This script computes both sides for transverse-field Ising chains: Trotter
steps and gate counts for a 1% accuracy target vs QTurbo's single compiled
pulse and its measured coefficient error.

Run:  python examples/digital_vs_analog.py

Declarative equivalent (adds the SimuQ-style baseline + artifact store):
``repro run examples/experiments/digital_vs_analog.yaml``
"""

from repro import QTurboCompiler
from repro.aais import RydbergAAIS
from repro.analysis import format_table
from repro.devices import RydbergSpec
from repro.devices.base import TrapGeometry
from repro.digital import gate_counts, trotter_steps_required
from repro.models import ising_chain

EPSILON = 1e-2  # target simulation accuracy
T_TARGET = 1.0


def main() -> None:
    rows = []
    for n in (4, 8, 16, 32, 64):
        model = ising_chain(n)
        steps = trotter_steps_required(model, T_TARGET, EPSILON)
        counts = gate_counts(model, steps)

        if n <= 16:
            spec = RydbergSpec(
                name="chain",
                delta_max=20.0,
                omega_max=2.5,
                geometry=TrapGeometry(
                    extent=max(75.0, 9.0 * n), min_spacing=4.0, dimension=1
                ),
                max_time=4.0,
            )
            aais = RydbergAAIS(n, spec=spec)
            result = QTurboCompiler(aais).compile(model, T_TARGET)
            analog_pulses = result.schedule.num_segments
            analog_error = 100 * result.relative_error
        else:
            analog_pulses, analog_error = 1, None  # not compiled here

        rows.append(
            [
                n,
                steps,
                counts.two_qubit,
                counts.total,
                analog_pulses,
                analog_error,
            ]
        )
    print(
        format_table(
            [
                "N",
                "trotter_steps",
                "CNOTs",
                "total_gates",
                "analog_pulses",
                "analog_err(%)",
            ],
            rows,
            title=(
                f"Ising chain, T = {T_TARGET} µs, digital accuracy "
                f"target {EPSILON:g}"
            ),
        )
    )
    print(
        "\nGate counts grow super-linearly in N (commutator sums) and as"
        "\n1/ε in accuracy, while the analog compiler always emits one"
        "\npulse — the asymmetry motivating the paper."
    )


if __name__ == "__main__":
    main()
